"""Interprocedural guard-and-taint dataflow on the program graph.

Three whole-program analyses run on a :class:`~repro.check.graph.ProgramGraph`:

* **Taint flows (D101/D102).**  A function whose return value derives
  from a wall-clock read or an unseeded RNG is *tainted* — even when the
  read itself carries a ``# simlint: disable`` comment, because the
  suppression justifies the host-side read, not feeding its value into
  the simulation.  Summaries propagate transitively through the call
  graph (a helper returning a tainted helper's result is tainted), and a
  violation is reported where a tainted value reaches a **sim-visible
  sink**: a ``schedule_at``/``timeout``/``hold``/``post`` argument, or a
  method call that draws from a tainted RNG object.  The per-file pass
  only sees direct calls; this pass catches the laundered ones.

* **Guard inference (O301–O303).**  A helper whose body calls a tracer/
  telemetry/recorder hook without the local guard is fine when *every*
  call site in the program already sits under the right guard — the
  hook can never execute unguarded.  Such per-file violations are
  dropped; a single unguarded call site keeps them.

* **Sort-key hazards (S503).**  ``sort(key=f)``/``sorted(x, key=f)``
  where ``f`` is a *named* function (possibly in another module) that
  keys shard messages on ``.when`` alone: resolved through the graph
  and checked for the full ``(when, src_shard, src_seq)`` triple — the
  case a per-file pass provably cannot see when ``f`` lives elsewhere.

Everything here is conservative: unresolvable calls contribute nothing,
so a finding is always anchored to a concrete static path.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Tuple

from .graph import FunctionInfo, ModuleInfo, ProgramGraph

__all__ = [
    "compute_return_taints",
    "find_taint_flows",
    "drop_guarded_hook_violations",
    "find_sort_key_hazards",
]

TAINT_WALLCLOCK = "wallclock"
TAINT_RNG = "unseeded-rng"

# Sim-visible sinks: scheduling a value onto a calendar (or across a
# shard boundary) makes it part of the simulated timeline.
_SINK_METHODS = frozenset({
    "schedule_at", "timeout", "hold", "post", "schedule",
    "_schedule_call1", "run_window",
})

# Value-preserving wrappers: a cast does not launder a taint away.
_PASSTHROUGH_CALLS = frozenset({
    "int", "float", "abs", "round", "min", "max",
})

# Local import to avoid a cycle at module load (simlint imports us for
# the program pass; we only need its rule tables).
def _tables():
    from . import simlint

    return simlint._WALLCLOCK_CALLS, simlint._GLOBAL_RNG_FNS


def _dotted(node: ast.AST) -> Optional[str]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _linear_stmts(node: ast.AST) -> Iterator[ast.stmt]:
    """Statements of one function body in source order, own scope only."""
    for field in ("body", "orelse", "finalbody"):
        for stmt in getattr(node, field, ()):
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue  # nested scopes are their own functions
            yield stmt
            yield from _linear_stmts(stmt)
    for handler in getattr(node, "handlers", ()):
        for stmt in handler.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue
            yield stmt
            yield from _linear_stmts(stmt)


Taints = Dict[str, str]          # taint kind -> human-readable origin
Env = Dict[str, Taints]          # local name -> taints


class _FunctionScan:
    """One linear pass over a function: env tracking + optional sinks."""

    def __init__(self, info: FunctionInfo, module: ModuleInfo,
                 graph: ProgramGraph,
                 summaries: Dict[Tuple[str, str], Taints]):
        self.info = info
        self.module = module
        self.graph = graph
        self.summaries = summaries
        self.env: Env = {}
        self.returns: Taints = {}
        self.sinks: List[Tuple[ast.Call, str, str, str]] = []

    # -- expression taint ------------------------------------------------------

    def expr_taint(self, expr: Optional[ast.AST]) -> Taints:
        if expr is None:
            return {}
        if isinstance(expr, ast.Name):
            return dict(self.env.get(expr.id, {}))
        if isinstance(expr, ast.Attribute):
            # An attribute of a tainted object carries the taint.
            return self.expr_taint(expr.value)
        if isinstance(expr, ast.Call):
            return self.call_taint(expr)
        if isinstance(expr, ast.BinOp):
            out = self.expr_taint(expr.left)
            out.update(self.expr_taint(expr.right))
            return out
        if isinstance(expr, ast.UnaryOp):
            return self.expr_taint(expr.operand)
        if isinstance(expr, ast.IfExp):
            out = self.expr_taint(expr.body)
            out.update(self.expr_taint(expr.orelse))
            return out
        if isinstance(expr, (ast.Tuple, ast.List)):
            out: Taints = {}
            for element in expr.elts:
                out.update(self.expr_taint(element))
            return out
        if isinstance(expr, (ast.Await, ast.Starred, ast.NamedExpr)):
            return self.expr_taint(expr.value)
        if isinstance(expr, (ast.Yield, ast.YieldFrom)):
            return {}
        return {}

    def call_taint(self, call: ast.Call) -> Taints:
        wallclock_calls, global_rng = _tables()
        dotted = _dotted(call.func)
        if dotted is not None:
            if dotted in wallclock_calls:
                return {TAINT_WALLCLOCK: "%s()" % dotted}
            parts = dotted.split(".")
            if (len(parts) == 2 and parts[0] == "random"
                    and parts[1] in global_rng):
                return {TAINT_RNG: "%s()" % dotted}
            if (dotted in ("random.Random", "Random")
                    and not call.args and not call.keywords):
                return {TAINT_RNG: "unseeded %s()" % dotted}
            if (isinstance(call.func, ast.Name)
                    and call.func.id in _PASSTHROUGH_CALLS):
                out: Taints = {}
                for arg in call.args:
                    out.update(self.expr_taint(arg))
                return out
        target = self.graph.resolve(self.module, call.func, self.info.cls)
        if target is not None:
            summary = self.summaries.get(target.key)
            if summary:
                return {kind: "%s:%s()" % (target.module, target.qualname)
                        for kind in summary}
        return {}

    # -- the pass --------------------------------------------------------------

    def run(self, collect_sinks: bool) -> None:
        for stmt in _linear_stmts(self.info.node):
            if collect_sinks:
                self._scan_sinks(stmt)
            self._apply(stmt)

    def _own_expressions(self, stmt: ast.stmt) -> Iterator[ast.AST]:
        """Expression subtrees attached to this statement itself.

        Nested statements (loop bodies, branches) are yielded separately
        by :func:`_linear_stmts`, so descending into them here would
        double-report their sinks.
        """
        for _field, value in ast.iter_fields(stmt):
            if isinstance(value, ast.expr):
                yield from ast.walk(value)
            elif isinstance(value, list):
                for item in value:
                    if isinstance(item, ast.expr):
                        yield from ast.walk(item)
                    elif isinstance(item, ast.withitem):
                        yield from ast.walk(item.context_expr)

    def _scan_sinks(self, stmt: ast.stmt) -> None:
        for node in self._own_expressions(stmt):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            if func.attr in _SINK_METHODS:
                for arg in list(node.args) + [kw.value
                                              for kw in node.keywords]:
                    taints = self.expr_taint(arg)
                    for kind, origin in sorted(taints.items()):
                        self.sinks.append((node, kind, origin, func.attr))
            elif isinstance(func.value, ast.Name):
                # A method call on a tainted RNG object is a draw from
                # an unseeded stream no matter where it happens.
                taints = self.env.get(func.value.id, {})
                if TAINT_RNG in taints:
                    self.sinks.append(
                        (node, TAINT_RNG, taints[TAINT_RNG], func.attr))

    def _apply(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            taints = self.expr_taint(stmt.value)
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    if taints:
                        self.env[target.id] = dict(taints)
                    else:
                        self.env.pop(target.id, None)
        elif isinstance(stmt, ast.AnnAssign):
            if isinstance(stmt.target, ast.Name) and stmt.value is not None:
                taints = self.expr_taint(stmt.value)
                if taints:
                    self.env[stmt.target.id] = dict(taints)
                else:
                    self.env.pop(stmt.target.id, None)
        elif isinstance(stmt, ast.AugAssign):
            if isinstance(stmt.target, ast.Name):
                taints = self.expr_taint(stmt.value)
                if taints:
                    merged = dict(self.env.get(stmt.target.id, {}))
                    merged.update(taints)
                    self.env[stmt.target.id] = merged
        elif isinstance(stmt, ast.Return):
            self.returns.update(self.expr_taint(stmt.value))


# -- public passes -------------------------------------------------------------


def compute_return_taints(graph: ProgramGraph) -> Dict[Tuple[str, str],
                                                       Taints]:
    """Fixpoint summaries: which functions return tainted values."""
    summaries: Dict[Tuple[str, str], Taints] = {}
    for _pass in range(len(graph.modules) + 2):
        changed = False
        for name in graph.order:
            module = graph.modules[name]
            for info in module.functions.values():
                scan = _FunctionScan(info, module, graph, summaries)
                scan.run(collect_sinks=False)
                if scan.returns and scan.returns != summaries.get(info.key):
                    summaries[info.key] = dict(scan.returns)
                    changed = True
        if not changed:
            break
    return summaries


def find_taint_flows(graph: ProgramGraph,
                     summaries: Dict[Tuple[str, str], Taints]):
    """Interprocedural D101/D102 violations at sim-visible sinks.

    Only *indirect* flows are reported (origin is a helper function):
    a direct ``sim.hold(time.time())`` is already a per-file D101 at the
    same line, and double-reporting would force double suppressions.
    """
    from .simlint import Violation

    out: List[Violation] = []
    for name in graph.order:
        module = graph.modules[name]
        for info in module.functions.values():
            scan = _FunctionScan(info, module, graph, summaries)
            scan.run(collect_sinks=True)
            for node, kind, origin, sink in scan.sinks:
                if ":" not in origin:
                    # Direct source in this same function: the per-file
                    # D101/D102 already flags the read itself.
                    continue
                code = "D101" if kind == TAINT_WALLCLOCK else "D102"
                what = ("wall-clock" if kind == TAINT_WALLCLOCK
                        else "unseeded-RNG")
                out.append(Violation(
                    path=module.path,
                    line=node.lineno,
                    col=node.col_offset,
                    code=code,
                    message="%s value from %s flows into sim-visible "
                            ".%s() via helper dataflow"
                            % (what, origin, sink),
                ))
    return out


_NEEDED_GUARD = {"O301": "enabled", "O302": "telem", "O303": "recorder"}


def drop_guarded_hook_violations(graph: ProgramGraph, violations):
    """Guard inference: drop O3xx findings in always-guarded helpers."""
    out = []
    by_path = {module.path: module for module in graph.modules.values()}
    for violation in violations:
        needed = _NEEDED_GUARD.get(violation.code)
        if needed is None:
            out.append(violation)
            continue
        module = by_path.get(violation.path)
        if module is None:
            out.append(violation)
            continue
        info = module.function_at(violation.line)
        if info is None:
            out.append(violation)
            continue
        sites = graph.call_sites(info)
        if sites and all(needed in site.guards for site in sites):
            continue  # every caller guards the hook: provably dead path
        out.append(violation)
    return out


def _key_fields(func_node: ast.AST) -> Optional[frozenset]:
    """Attribute names a key function reads off its first parameter."""
    args = getattr(func_node, "args", None)
    if args is None or not args.args:
        return None
    param = args.args[0].arg
    fields = set()
    for node in ast.walk(func_node):
        if (isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == param):
            fields.add(node.attr)
    return frozenset(fields)


def find_sort_key_hazards(graph: ProgramGraph):
    """S503 via the graph: named sort keys that drop the tie-breakers.

    A per-file pass can check an inline ``lambda m: m.when``; only the
    program graph can check ``key=by_when`` where ``by_when`` is defined
    in another module.
    """
    out = []
    for name in graph.order:
        module = graph.modules[name]
        _scan_sort_keys(graph, module, module.tree, None, out)
    return out


def _scan_sort_keys(graph: ProgramGraph, module: ModuleInfo, node: ast.AST,
                    cls: Optional[str], out: list) -> None:
    if isinstance(node, ast.ClassDef):
        cls = node.name
    if isinstance(node, ast.Call):
        _check_sort_key(graph, module, node, cls, out)
    for child in ast.iter_child_nodes(node):
        _scan_sort_keys(graph, module, child, cls, out)


def _check_sort_key(graph: ProgramGraph, module: ModuleInfo, call: ast.Call,
                    cls: Optional[str], out: list) -> None:
    from .simlint import Violation

    is_sort = (isinstance(call.func, ast.Attribute)
               and call.func.attr == "sort")
    is_sorted = (isinstance(call.func, ast.Name)
                 and call.func.id == "sorted")
    if not (is_sort or is_sorted):
        return
    for keyword in call.keywords:
        if keyword.arg != "key":
            continue
        key = keyword.value
        if isinstance(key, ast.Lambda):
            continue  # the per-file pass handles inline lambdas
        target = graph.resolve(module, key, cls)
        if target is None:
            continue
        fields = _key_fields(target.node)
        if fields is None:
            continue
        if "when" in fields and not any("seq" in field for field in fields):
            out.append(Violation(
                path=module.path,
                line=call.lineno,
                col=call.col_offset,
                code="S503",
                message="sort key %s:%s() orders shard messages by .when "
                        "without the (src_shard, src_seq) tie-breakers; "
                        "equal-time merges become executor-dependent"
                        % (target.module, target.qualname),
            ))
