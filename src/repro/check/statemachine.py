"""M6xx: declarative protocol state-machine specs checked against code.

The scale-out arc added two protocol invariants that simsan can only
catch *after* a broken run, and one replay-semantics table that nothing
checked at all.  This module states each as a small declarative spec and
verifies the handler code still implements it, so a refactor that breaks
the protocol machine fails ``repro lint`` before anything runs:

* **M601 — iSCSI CmdSN discipline** (``repro.iscsi.mcs``): command
  sequence numbers are allocated monotonically (``self._cmdsn`` only
  ever increments), allocation happens before the first ``yield`` in
  ``call`` (ordering is by issue, not completion), the completion
  cursor ``_next_done`` can only advance (``max(...)`` or the reset
  jump to ``_cmdsn``), and ``call`` parks out-of-order completions on a
  gate guarded by a ``_next_done`` comparison.

* **M602 — pNFS layout-before-I/O** (``repro.nfs.pnfs``): every routed
  file operation on :class:`StripedNfsClient` must obtain its data
  server through the LAYOUTGET path (``_home``/``_at_home``) or the fd
  table (``_route_fd``) before talking to a ``self.clients[...]``
  connection; only the declared mirrored-namespace ops may fan out
  directly.

* **M603 — NFS replay-semantics coverage** (``repro.nfs.client``): the
  Linux-style replay table — EEXIST absorbed on replayed CREATE/MKDIR,
  ENOENT absorbed on replayed REMOVE/RMDIR/RENAME — must keep one
  handler per row: a ``try`` issuing the op with an ``except`` for the
  mapped error class that consults the reply's ``replayed`` flag.

Specs fire only for their target module (matched on the dotted module
name), so fixture code and unrelated files are never checked.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["check_module", "MACHINE_MODULES"]


# -- M601: CmdSN allocation and in-order completion ---------------------------

_MCS_MODULE = "repro.iscsi.mcs"
_MCS_CLASS = "McsSession"
_MCS_COUNTER = "_cmdsn"
_MCS_CURSOR = "_next_done"
_MCS_ISSUE_METHOD = "call"
_MCS_RESET_METHODS = ("reset",)

# -- M602: LAYOUTGET before striped I/O ---------------------------------------

_PNFS_MODULE = "repro.nfs.pnfs"
_PNFS_CLASS = "StripedNfsClient"
_PNFS_CLIENTS_ATTR = "clients"
_PNFS_ROUTERS = ("_home", "_at_home", "_route_fd")
# Namespace ops that legitimately fan out to every server.
_PNFS_MIRRORED = ("mkdir", "rmdir", "readdir", "quiesce", "drop_caches")
# Internal plumbing: the routers themselves plus construction.
_PNFS_INTERNAL = ("__init__", "_home", "_at_home", "_route_fd", "_wrap_fd")

# -- M603: replay-semantics table ---------------------------------------------

_REPLAY_MODULE = "repro.nfs.client"
# op constant (repro.nfs.protocol name) -> error class absorbed on replay
_REPLAY_TABLE = (
    ("CREATE", "FileExists"),
    ("MKDIR", "FileExists"),
    ("REMOVE", "FileNotFound"),
    ("RMDIR", "FileNotFound"),
    ("RENAME", "FileNotFound"),
)

MACHINE_MODULES = (_MCS_MODULE, _PNFS_MODULE, _REPLAY_MODULE)


def _violation(path: str, node: Optional[ast.AST], code: str, message: str):
    from .simlint import Violation

    return Violation(
        path=path,
        line=getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0),
        code=code,
        message=message,
    )


def _find_class(tree: ast.Module, name: str) -> Optional[ast.ClassDef]:
    for stmt in tree.body:
        if isinstance(stmt, ast.ClassDef) and stmt.name == name:
            return stmt
    return None


def _methods(cls: ast.ClassDef) -> Dict[str, ast.FunctionDef]:
    return {stmt.name: stmt for stmt in cls.body
            if isinstance(stmt, ast.FunctionDef)}


def _self_attr(node: ast.AST, attr: str) -> bool:
    return (isinstance(node, ast.Attribute) and node.attr == attr
            and isinstance(node.value, ast.Name)
            and node.value.id == "self")


def _mentions_self_attr(tree: ast.AST, attr: str) -> bool:
    return any(_self_attr(node, attr) for node in ast.walk(tree))


# -- M601 ---------------------------------------------------------------------


def _check_mcs(tree: ast.Module, path: str) -> List:
    out: List = []
    cls = _find_class(tree, _MCS_CLASS)
    if cls is None:
        out.append(_violation(
            path, tree.body[0] if tree.body else None, "M601",
            "protocol spec target class %s missing from %s"
            % (_MCS_CLASS, _MCS_MODULE)))
        return out
    methods = _methods(cls)

    for method in methods.values():
        out.extend(_check_mcs_counter_writes(method, path))
        out.extend(_check_mcs_cursor_writes(method, path))

    issue = methods.get(_MCS_ISSUE_METHOD)
    if issue is None:
        out.append(_violation(
            path, cls, "M601",
            "%s.%s() missing: the spec's issue path has no home"
            % (_MCS_CLASS, _MCS_ISSUE_METHOD)))
        return out

    # Allocation (a read of self._cmdsn) must precede the first yield:
    # CmdSN order is issue order, not completion order.
    first_yield = None
    alloc_line = None
    for node in ast.walk(issue):
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            if first_yield is None or node.lineno < first_yield:
                first_yield = node.lineno
        if _self_attr(node, _MCS_COUNTER):
            if alloc_line is None or node.lineno < alloc_line:
                alloc_line = node.lineno
    if alloc_line is None or (first_yield is not None
                              and alloc_line > first_yield):
        out.append(_violation(
            path, issue, "M601",
            "%s() must allocate %s before its first yield so CmdSN "
            "order is issue order" % (_MCS_ISSUE_METHOD, _MCS_COUNTER)))

    # The in-order gate: an `if` comparing against the cursor whose
    # body parks (yields) until earlier commands release it.
    gated = False
    for node in ast.walk(issue):
        if isinstance(node, ast.If) and _mentions_self_attr(
                node.test, _MCS_CURSOR):
            if any(isinstance(sub, (ast.Yield, ast.YieldFrom))
                   for branch in (node.body,) for stmt in branch
                   for sub in ast.walk(stmt)):
                gated = True
                break
    if not gated:
        out.append(_violation(
            path, issue, "M601",
            "%s() has no in-order completion gate: out-of-order "
            "responses must park on an `if ... %s` guarded event"
            % (_MCS_ISSUE_METHOD, _MCS_CURSOR)))
    return out


def _check_mcs_counter_writes(method: ast.FunctionDef, path: str) -> List:
    """self._cmdsn may only be zeroed in __init__ or incremented."""
    out: List = []
    for node in ast.walk(method):
        if isinstance(node, ast.AugAssign) and _self_attr(
                node.target, _MCS_COUNTER):
            positive = (isinstance(node.op, ast.Add)
                        and isinstance(node.value, ast.Constant)
                        and isinstance(node.value.value, (int, float))
                        and node.value.value > 0)
            if not positive:
                out.append(_violation(
                    path, node, "M601",
                    "%s must grow by a positive constant; any other "
                    "update can reuse or reorder CmdSNs" % _MCS_COUNTER))
        elif isinstance(node, ast.Assign) and any(
                _self_attr(target, _MCS_COUNTER) for target in node.targets):
            zero_init = (method.name == "__init__"
                         and isinstance(node.value, ast.Constant)
                         and node.value.value == 0)
            if not zero_init:
                out.append(_violation(
                    path, node, "M601",
                    "%s reassigned outside __init__: CmdSN allocation "
                    "must be monotonic" % _MCS_COUNTER))
    return out


def _check_mcs_cursor_writes(method: ast.FunctionDef, path: str) -> List:
    """_next_done may only advance: max(...) form, or the reset jump."""
    out: List = []
    for node in ast.walk(method):
        if not (isinstance(node, ast.Assign) and any(
                _self_attr(target, _MCS_CURSOR) for target in node.targets)):
            continue
        value = node.value
        if method.name == "__init__" and isinstance(
                value, ast.Constant) and value.value == 0:
            continue
        is_max = (isinstance(value, ast.Call)
                  and isinstance(value.func, ast.Name)
                  and value.func.id == "max"
                  and any(_self_attr(arg, _MCS_CURSOR)
                          for arg in value.args))
        is_reset_jump = (method.name in _MCS_RESET_METHODS
                         and _self_attr(value, _MCS_COUNTER))
        if not (is_max or is_reset_jump):
            out.append(_violation(
                path, node, "M601",
                "%s may only advance (max(%s, ...) or the reset jump to "
                "%s); this write can rewind the completion cursor and "
                "release commands out of order"
                % (_MCS_CURSOR, _MCS_CURSOR, _MCS_COUNTER)))
    return out


# -- M602 ---------------------------------------------------------------------


def _clients_uses(method: ast.FunctionDef) -> List[ast.AST]:
    """Places this method reaches into self.clients for a connection.

    Counted: subscripts ``self.clients[...]`` and ``for ... in
    self.clients`` loops.  Plain ``len(self.clients)`` style reads are
    not routing decisions and stay legal everywhere.
    """
    uses: List[ast.AST] = []
    for node in ast.walk(method):
        if isinstance(node, ast.Subscript) and _self_attr(
                node.value, _PNFS_CLIENTS_ATTR):
            uses.append(node)
        elif isinstance(node, ast.For) and _self_attr(
                node.iter, _PNFS_CLIENTS_ATTR):
            uses.append(node)
        elif isinstance(node, ast.comprehension) and _self_attr(
                node.iter, _PNFS_CLIENTS_ATTR):
            uses.append(node)
    return uses


def _router_call_lines(method: ast.FunctionDef) -> List[int]:
    lines = []
    for node in ast.walk(method):
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _PNFS_ROUTERS):
            lines.append(node.lineno)
    return lines


def _check_pnfs(tree: ast.Module, path: str) -> List:
    out: List = []
    cls = _find_class(tree, _PNFS_CLASS)
    if cls is None:
        out.append(_violation(
            path, tree.body[0] if tree.body else None, "M602",
            "protocol spec target class %s missing from %s"
            % (_PNFS_CLASS, _PNFS_MODULE)))
        return out
    for method in _methods(cls).values():
        if method.name in _PNFS_INTERNAL or method.name in _PNFS_MIRRORED:
            continue
        uses = _clients_uses(method)
        if not uses:
            continue
        router_lines = _router_call_lines(method)
        for use in uses:
            if not any(line <= use.lineno for line in router_lines):
                out.append(_violation(
                    path, use, "M602",
                    "%s.%s() reaches self.%s without a LAYOUTGET-backed "
                    "lookup (%s) first: striped I/O must route through "
                    "the layout"
                    % (_PNFS_CLASS, method.name, _PNFS_CLIENTS_ATTR,
                       "/".join(_PNFS_ROUTERS))))
    return out


# -- M603 ---------------------------------------------------------------------


def _try_issues_op(node: ast.Try, op: str) -> bool:
    """True when the try body issues the protocol op (``p.<OP>`` arg)."""
    for stmt in node.body:
        for sub in ast.walk(stmt):
            if isinstance(sub, ast.Attribute) and sub.attr == op:
                return True
            if isinstance(sub, ast.Name) and sub.id == op:
                return True
    return False


def _handler_covers(handler: ast.ExceptHandler, error_cls: str) -> bool:
    """except <error_cls> whose body (or guard) consults `replayed`."""
    type_node = handler.type
    names = []
    if type_node is not None:
        for sub in ast.walk(type_node):
            if isinstance(sub, ast.Name):
                names.append(sub.id)
            elif isinstance(sub, ast.Attribute):
                names.append(sub.attr)
    if error_cls not in names:
        return False
    for stmt in handler.body:
        for sub in ast.walk(stmt):
            if isinstance(sub, ast.Constant) and sub.value == "replayed":
                return True
            if isinstance(sub, ast.Attribute) and sub.attr == "replayed":
                return True
            if isinstance(sub, ast.Name) and sub.id == "replayed":
                return True
    return False


def _check_replay(tree: ast.Module, path: str) -> List:
    out: List = []
    tries = [node for node in ast.walk(tree) if isinstance(node, ast.Try)]
    for op, error_cls in _REPLAY_TABLE:
        covered = any(
            _try_issues_op(node, op)
            and any(_handler_covers(handler, error_cls)
                    for handler in node.handlers)
            for node in tries)
        if not covered:
            out.append(_violation(
                path, tree.body[0] if tree.body else None, "M603",
                "replay-semantics row %s/%s uncovered: a replayed %s whose "
                "first reply was lost must absorb %s (Linux-style replay "
                "table)" % (op, error_cls, op, error_cls)))
    return out


# -- dispatch -----------------------------------------------------------------


_CHECKERS = {
    _MCS_MODULE: _check_mcs,
    _PNFS_MODULE: _check_pnfs,
    _REPLAY_MODULE: _check_replay,
}


def check_module(tree: ast.Module, path: str,
                 module: Optional[str]) -> List:
    """Run whichever machine specs target ``module`` (none for most)."""
    checker = _CHECKERS.get(module or "")
    if checker is None:
        return []
    return checker(tree, path)
