"""SARIF 2.1.0 output for simlint (``repro lint --format sarif``).

SARIF (Static Analysis Results Interchange Format, OASIS) is what CI
code-scanning UIs ingest to annotate PRs inline.  :func:`format_sarif`
emits a minimal, schema-valid 2.1.0 document — one run, one driver, the
full rule catalog, one result per violation — with sorted keys so the
artifact is byte-stable across identical runs.

Because the container has no network (and no jsonschema dependency),
:func:`validate_sarif` is an offline structural validator covering the
parts of the 2.1.0 schema this tool exercises: required top-level
fields, run/tool/driver shape, rule descriptors, and result locations.
Tests assert our own output passes it, and that broken documents fail.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Sequence, Union

from .simlint import RULES, Violation

__all__ = ["SARIF_VERSION", "SARIF_SCHEMA_URI", "format_sarif",
           "validate_sarif"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = ("https://raw.githubusercontent.com/oasis-tcs/"
                    "sarif-spec/master/Schemata/sarif-schema-2.1.0.json")

_TOOL_URI = "https://example.invalid/repro/simlint"


def format_sarif(violations: Sequence[Violation]) -> str:
    """The lint run as a SARIF 2.1.0 JSON document (byte-stable)."""
    rule_ids = sorted(RULES)
    rule_index = {code: i for i, code in enumerate(rule_ids)}
    rules = [
        {
            "id": code,
            "name": RULES[code].name,
            "shortDescription": {"text": RULES[code].name},
            "help": {"text": RULES[code].hint},
            "defaultConfiguration": {"level": "error"},
        }
        for code in rule_ids
    ]
    results = [
        {
            "ruleId": violation.code,
            "ruleIndex": rule_index[violation.code],
            "level": "error",
            "message": {
                "text": "%s (hint: %s)" % (violation.message,
                                           violation.hint),
            },
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": violation.path.replace("\\", "/"),
                        },
                        "region": {
                            "startLine": violation.line,
                            "startColumn": violation.col + 1,
                        },
                    },
                },
            ],
        }
        for violation in violations
    ]
    document = {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "simlint",
                        "informationUri": _TOOL_URI,
                        "rules": rules,
                    },
                },
                "results": results,
                "columnKind": "utf16CodeUnits",
            },
        ],
    }
    return json.dumps(document, indent=2, sort_keys=True)


def _expect(problems: List[str], condition: bool, message: str) -> bool:
    if not condition:
        problems.append(message)
    return condition


def validate_sarif(document: Union[str, Dict[str, Any]]) -> List[str]:
    """Structural 2.1.0 validation; returns problems ([] when valid)."""
    problems: List[str] = []
    if isinstance(document, str):
        try:
            document = json.loads(document)
        except ValueError as error:
            return ["not JSON: %s" % error]
    if not _expect(problems, isinstance(document, dict),
                   "document must be a JSON object"):
        return problems
    _expect(problems, document.get("version") == SARIF_VERSION,
            "version must be %r" % SARIF_VERSION)
    runs = document.get("runs")
    if not _expect(problems, isinstance(runs, list) and runs,
                   "runs must be a non-empty array"):
        return problems
    for i, run in enumerate(runs):
        where = "runs[%d]" % i
        if not _expect(problems, isinstance(run, dict),
                       "%s must be an object" % where):
            continue
        driver = run.get("tool", {}).get("driver") \
            if isinstance(run.get("tool"), dict) else None
        if not _expect(problems, isinstance(driver, dict),
                       "%s.tool.driver is required" % where):
            continue
        _expect(problems,
                isinstance(driver.get("name"), str) and driver["name"],
                "%s.tool.driver.name must be a non-empty string" % where)
        rules = driver.get("rules", [])
        rule_ids: List[str] = []
        if _expect(problems, isinstance(rules, list),
                   "%s.tool.driver.rules must be an array" % where):
            for j, rule in enumerate(rules):
                rwhere = "%s.tool.driver.rules[%d]" % (where, j)
                if _expect(problems, isinstance(rule, dict)
                           and isinstance(rule.get("id"), str),
                           "%s.id must be a string" % rwhere):
                    rule_ids.append(rule["id"])
        results = run.get("results", [])
        if not _expect(problems, isinstance(results, list),
                       "%s.results must be an array" % where):
            continue
        for j, result in enumerate(results):
            _validate_result(problems, result,
                             "%s.results[%d]" % (where, j), rule_ids)
    return problems


def _validate_result(problems: List[str], result: Any, where: str,
                     rule_ids: List[str]) -> None:
    if not _expect(problems, isinstance(result, dict),
                   "%s must be an object" % where):
        return
    message = result.get("message")
    _expect(problems, isinstance(message, dict)
            and isinstance(message.get("text"), str),
            "%s.message.text is required" % where)
    rule_id = result.get("ruleId")
    if rule_id is not None:
        _expect(problems, rule_id in rule_ids,
                "%s.ruleId %r not in driver.rules" % (where, rule_id))
    index = result.get("ruleIndex")
    if index is not None:
        _expect(problems,
                isinstance(index, int) and 0 <= index < len(rule_ids)
                and (rule_id is None or rule_ids[index] == rule_id),
                "%s.ruleIndex %r inconsistent with ruleId" % (where, index))
    for k, location in enumerate(result.get("locations", []) or []):
        lwhere = "%s.locations[%d]" % (where, k)
        if not _expect(problems, isinstance(location, dict),
                       "%s must be an object" % lwhere):
            continue
        physical = location.get("physicalLocation")
        if physical is None:
            continue
        if not _expect(problems, isinstance(physical, dict),
                       "%s.physicalLocation must be an object" % lwhere):
            continue
        artifact = physical.get("artifactLocation")
        if artifact is not None:
            _expect(problems, isinstance(artifact, dict)
                    and isinstance(artifact.get("uri"), str),
                    "%s...artifactLocation.uri must be a string" % lwhere)
        region = physical.get("region")
        if region is not None and _expect(
                problems, isinstance(region, dict),
                "%s...region must be an object" % lwhere):
            for field in ("startLine", "startColumn",
                          "endLine", "endColumn"):
                value = region.get(field)
                if value is not None:
                    _expect(problems,
                            isinstance(value, int) and value >= 1,
                            "%s...region.%s must be an int >= 1"
                            % (lwhere, field))
