"""Exporters for :class:`~repro.obs.tracer.Tracer` recordings.

Three output formats, matching the three observation tools of the paper:

* :func:`packet_trace_lines` — a JSONL packet trace, one message per line
  (the Ethereal capture).  Schema documented in the README's
  "Observability" section;
* :func:`op_summary` / :func:`format_op_summary` — a per-op table of
  message counts, bytes, and latency percentiles (``nfsstat`` plus the
  paper's Tables 2-4 raw material);
* :func:`chrome_trace` / :func:`write_chrome_trace` — the Chrome
  ``trace_event`` JSON format: load the file into ``chrome://tracing`` or
  https://ui.perfetto.dev to browse spans, messages, and utilization
  counters on a zoomable timeline.

Plus a textual renderer used by the CLI and the examples:
:func:`render_span_tree` (causal tree of one or more root spans).  The
side-by-side :func:`render_timeline_diff` moved to
:mod:`repro.obs.explain` with the rest of the diff tooling; the name
here survives as a deprecated wrapper.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .tracer import Span, Tracer

__all__ = [
    "packet_trace_lines",
    "write_packet_trace",
    "op_summary",
    "format_op_summary",
    "chrome_trace",
    "write_chrome_trace",
    "render_span_tree",
    "render_timeline_diff",
]

# Stable process ids for the three Chrome-trace tracks.
_TRACK_PIDS = {"client": 1, "server": 2, "wire": 3}


def _pid(track: str) -> int:
    return _TRACK_PIDS.get(track, 9)


# -- JSONL packet trace -------------------------------------------------------


def packet_trace_lines(tracer: Tracer) -> List[str]:
    """Render the message trace as JSONL (one JSON object per line).

    Each line has: ``t`` (simulated seconds), ``dir`` (``c2s``/``s2c``),
    ``op``, ``kind`` (``request``/``reply``), ``xid``, ``hdr`` and ``pay``
    byte counts, ``retrans`` (bool), and ``span`` (the causing span id,
    0 when the message was sent outside any traced span).
    """
    lines = []
    for msg in tracer.messages:
        lines.append(json.dumps({
            "t": round(msg.t, 9),
            "dir": msg.direction,
            "op": msg.op,
            "kind": msg.kind,
            "xid": msg.xid,
            "hdr": msg.header_bytes,
            "pay": msg.payload_bytes,
            "retrans": msg.retransmission,
            "span": msg.span_id,
        }, sort_keys=True))
    return lines


def write_packet_trace(tracer: Tracer, path: str) -> int:
    """Write the JSONL packet trace to ``path``; returns the line count."""
    lines = packet_trace_lines(tracer)
    with open(path, "w") as handle:
        for line in lines:
            handle.write(line + "\n")
    return len(lines)


# -- per-op summary -----------------------------------------------------------


def op_summary(tracer: Tracer) -> Tuple[List[str], List[List[Any]]]:
    """Build the per-op summary table: ``(headers, rows)``.

    One row per protocol op seen on the wire: request/reply/retransmission
    counts, bytes in each direction, and — when the op has a matching
    ``rpc:<op>`` latency histogram — mean/p50/p95/p99 round-trip times in
    milliseconds.
    """
    per_op: Dict[str, Dict[str, int]] = {}
    for msg in tracer.messages:
        row = per_op.setdefault(
            msg.op, {"req": 0, "rep": 0, "rexmit": 0,
                     "req_bytes": 0, "rep_bytes": 0})
        if msg.kind == "request":
            row["req"] += 1
            row["req_bytes"] += msg.size
            if msg.retransmission:
                row["rexmit"] += 1
        else:
            row["rep"] += 1
            row["rep_bytes"] += msg.size
    headers = ["op", "reqs", "replies", "rexmit", "req B", "reply B",
               "mean ms", "p50 ms", "p95 ms", "p99 ms"]
    rows: List[List[Any]] = []
    for op in sorted(per_op):
        row = per_op[op]
        hist = tracer.histograms.get("rpc:" + op)
        if hist is None:
            hist = tracer.histograms.get("scsi:" + op)
        if hist is not None and hist.count:
            latency = ["%.3f" % (hist.mean * 1e3),
                       "%.3f" % (hist.percentile(0.50) * 1e3),
                       "%.3f" % (hist.percentile(0.95) * 1e3),
                       "%.3f" % (hist.percentile(0.99) * 1e3)]
        else:
            latency = ["-", "-", "-", "-"]
        rows.append([op, row["req"], row["rep"], row["rexmit"],
                     row["req_bytes"], row["rep_bytes"]] + latency)
    return headers, rows


def format_op_summary(tracer: Tracer) -> str:
    """The per-op summary as an aligned text table."""
    headers, rows = op_summary(tracer)
    if not rows:
        return "(no protocol messages recorded)"
    widths = [max(len(str(headers[i])),
                  max(len(str(r[i])) for r in rows))
              for i in range(len(headers))]
    out = ["  ".join(str(h).ljust(w) for h, w in zip(headers, widths))]
    out.append("-" * len(out[0]))
    for row in rows:
        out.append("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
    return "\n".join(out)


# -- Chrome trace_event -------------------------------------------------------


def chrome_trace(tracer: Tracer) -> Dict[str, Any]:
    """Render the whole recording in Chrome ``trace_event`` format.

    Tracks (client/server/wire) map to processes, simulator processes to
    threads.  Spans become complete ("X") events, point events and
    messages become instants ("i"), utilization samples become counter
    ("C") series.  Timestamps are simulated microseconds.
    """
    events: List[Dict[str, Any]] = []
    for track, pid in sorted(_TRACK_PIDS.items(), key=lambda kv: kv[1]):
        events.append({"name": "process_name", "ph": "M", "pid": pid,
                       "tid": 0, "args": {"name": track}})
    for tid, name in sorted(tracer.tid_names.items()):
        for pid in sorted({_pid(s.track) for s in tracer.spans
                           if s.tid == tid}):
            events.append({"name": "thread_name", "ph": "M", "pid": pid,
                           "tid": tid, "args": {"name": name}})
    for span in tracer.spans:
        args = {str(k): v for k, v in span.args.items()}
        args["span_id"] = span.id
        if span.parent is not None:
            args["parent"] = span.parent
        events.append({
            "name": span.name,
            "cat": span.cat,
            "ph": "X",
            "ts": span.start * 1e6,
            "dur": max(0.0, (span.end or span.start) - span.start) * 1e6,
            "pid": _pid(span.track),
            "tid": span.tid,
            "args": args,
        })
    for point in tracer.events:
        events.append({
            "name": point.name,
            "cat": point.cat,
            "ph": "i",
            "s": "p",
            "ts": point.t * 1e6,
            "pid": _pid(point.track),
            "tid": 0,
            "args": {str(k): v for k, v in point.args.items()},
        })
    for msg in tracer.messages:
        label = "%s %s" % (msg.op, "req" if msg.kind == "request" else "rep")
        if msg.retransmission:
            label += " (rexmit)"
        events.append({
            "name": label,
            "cat": "net",
            "ph": "i",
            "s": "t",
            "ts": msg.t * 1e6,
            "pid": _pid("wire"),
            "tid": 1 if msg.direction == "c2s" else 2,
            "args": {"xid": msg.xid, "bytes": msg.size,
                     "dir": msg.direction, "span": msg.span_id},
        })
    if tracer.messages:
        for tid, name in ((1, "client->server"), (2, "server->client")):
            events.append({"name": "thread_name", "ph": "M",
                           "pid": _pid("wire"), "tid": tid,
                           "args": {"name": name}})
    for sample in tracer.samples:
        events.append({
            "name": sample.name,
            "ph": "C",
            "ts": sample.t * 1e6,
            "pid": _pid(sample.track),
            "tid": 0,
            "args": {"value": round(sample.value, 6)},
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(tracer: Tracer, path: str) -> int:
    """Write the Chrome trace JSON to ``path``; returns the event count."""
    trace = chrome_trace(tracer)
    with open(path, "w") as handle:
        json.dump(trace, handle)
    return len(trace["traceEvents"])


# -- textual renderers --------------------------------------------------------


def render_span_tree(tracer: Tracer, roots: Optional[Sequence[Span]] = None,
                     include_args: bool = True) -> str:
    """Render finished spans as an indented causal tree.

    ``roots`` defaults to every span without a recorded parent.  Each line
    shows track, name, duration, and (optionally) the span's arguments.
    """
    children = tracer.span_children()
    if roots is None:
        known = {span.id for span in tracer.spans}
        roots = [span for span in
                 sorted(tracer.spans, key=lambda s: (s.start, s.id))
                 if span.parent is None or span.parent not in known]
    lines: List[str] = []

    def walk(span: Span, depth: int) -> None:
        extra = ""
        if include_args and span.args:
            extra = "  " + " ".join(
                "%s=%s" % (k, v) for k, v in sorted(span.args.items()))
        lines.append("%9.3fms  %-6s %s%s (%.3fms)%s" % (
            span.start * 1e3, span.track, "  " * depth, span.name,
            span.duration * 1e3, extra))
        for child in children.get(span.id, []):
            walk(child, depth + 1)

    for root in roots:
        walk(root, 0)
    return "\n".join(lines)


def render_timeline_diff(tracer_a: Tracer, label_a: str,
                         tracer_b: Tracer, label_b: str,
                         limit: int = 0) -> str:
    """Deprecated alias of :func:`repro.obs.explain.render_timeline_diff`.

    The side-by-side timeline now lives with the rest of the diff
    tooling in :mod:`repro.obs.explain` (one diff entry point); this
    wrapper delegates verbatim and will be removed in a future release.
    """
    import warnings

    warnings.warn(
        "repro.obs.export.render_timeline_diff moved to "
        "repro.obs.explain.render_timeline_diff; import it from there",
        DeprecationWarning, stacklevel=2)
    from .explain import render_timeline_diff as impl

    return impl(tracer_a, label_a, tracer_b, label_b, limit=limit)
