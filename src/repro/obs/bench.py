"""The benchmark-regression harness behind ``repro bench``.

Runs a named *suite* of workloads on both storage stacks with tracing
enabled and emits one schema-versioned JSON document per suite
(``BENCH_<suite>.json``): completion times, exact message/byte counts,
per-syscall latency percentiles, the profiler's per-layer attribution and
top critical-path segments, and per-resource queueing stats.  Everything
is *simulated* time, so the output is deterministic — two runs of the
same code produce byte-identical JSON, which makes the committed baseline
a precise regression gate:

* ``repro bench --suite quick`` regenerates the document;
* ``repro bench --compare old.json new.json`` flags completion-time
  regressions beyond a tolerance (default 15%) and *any* change in
  message counts (counts are deterministic, so a drifted count means the
  protocol behavior changed — exactness is the point).

CI runs the quick suite on every push and compares against the committed
``BENCH_quick.json``; a legitimate performance change ships with a
regenerated baseline in the same commit, so the file doubles as the
repository's performance trajectory.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Tuple

from .profile import Profile

__all__ = [
    "SCHEMA_VERSION",
    "SCALE_SCHEMA_VERSION",
    "compare_scale_documents",
    "WORKLOADS",
    "SUITES",
    "run_case",
    "run_case_stack",
    "run_suite",
    "suite_cells",
    "write_bench",
    "load_bench",
    "relative_change",
    "compare",
    "format_compare",
    "format_compare_json",
]

SCHEMA_VERSION = 1

# The ``repro scale --farm`` document (``BENCH_scale.json``).  Schema 1
# recorded wall-clock storm timings (machine-dependent); schema 2 is the
# farm sweep, whose every field is simulated outcome and therefore
# byte-comparable across hosts.
SCALE_SCHEMA_VERSION = 2

# How many ranked critical-path segments each case records.
_PATH_LIMIT = 8


# -- workloads ----------------------------------------------------------------
# Shared by `repro trace` and `repro bench`: small, deterministic drivers
# that touch every layer of a stack.  All take the stack's client (the
# uniform syscall surface) and run as one simulator process.


def _workload_smoke(client):
    """A handful of syscalls touching every layer once."""
    yield from client.mkdir("/d")
    fd = yield from client.creat("/d/f")
    yield from client.write(fd, 16_384)
    yield from client.fsync(fd)
    yield from client.pread(fd, 4096, 0)
    yield from client.close(fd)
    yield from client.stat("/d/f")


def _workload_postmark(client, files=20, transactions=60, seed=42):
    """A small PostMark-like mix: create pool, transact, delete pool."""
    import random

    from ..fs.vfs import O_RDWR

    rng = random.Random(seed)
    yield from client.mkdir("/pm")
    names = []
    for index in range(files):
        name = "/pm/f%03d" % index
        fd = yield from client.creat(name)
        yield from client.pwrite(fd, rng.randrange(512, 16_384), 0)
        yield from client.close(fd)
        names.append(name)
    serial = files
    for _ in range(transactions):
        choice = rng.randrange(4)
        if choice == 0 and names:  # read a whole file
            fd = yield from client.open(rng.choice(names))
            attrs = yield from client.fstat(fd)
            yield from client.pread(fd, attrs.size, 0)
            yield from client.close(fd)
        elif choice == 1 and names:  # append
            fd = yield from client.open(rng.choice(names), O_RDWR)
            attrs = yield from client.fstat(fd)
            yield from client.pwrite(fd, rng.randrange(512, 8192), attrs.size)
            yield from client.close(fd)
        elif choice == 2:  # create
            name = "/pm/f%03d" % serial
            serial += 1
            fd = yield from client.creat(name)
            yield from client.pwrite(fd, rng.randrange(512, 16_384), 0)
            yield from client.close(fd)
            names.append(name)
        elif names:  # delete
            victim = names.pop(rng.randrange(len(names)))
            yield from client.unlink(victim)
    for name in names:
        yield from client.unlink(name)
    yield from client.rmdir("/pm")


def _make_io_workload(sequential: bool, write: bool, file_mb: int = 2,
                      seed: int = 7):
    """Sequential/random whole-file reader or writer over 64 KB requests.

    ``seed`` fixes the random permutation's RNG: the offset order (and
    so every message count downstream) is a pure function of the
    arguments, per the repo's determinism contract.
    """

    def workload(client):
        import random

        request = 64 * 1024
        size = file_mb * 1024 * 1024
        offsets = list(range(0, size, request))
        fd = yield from client.creat("/io")
        yield from client.pwrite(fd, size, 0)
        yield from client.fsync(fd)
        if not sequential:
            random.Random(seed).shuffle(offsets)
        for offset in offsets:
            if write:
                yield from client.pwrite(fd, request, offset)
            else:
                yield from client.pread(fd, request, offset)
        yield from client.close(fd)

    return workload


WORKLOADS = {
    "smoke": _workload_smoke,
    "postmark": _workload_postmark,
    "seqread": _make_io_workload(sequential=True, write=False),
    "randread": _make_io_workload(sequential=False, write=False),
    "seqwrite": _make_io_workload(sequential=True, write=True),
    "randwrite": _make_io_workload(sequential=False, write=True),
}

# Suite -> ((workload, stack kinds), ...).  "quick" is the CI gate:
# small enough for every push, broad enough to cover metadata (smoke),
# mixed small-file traffic (postmark), and the paper's headline
# random-write asymmetry (randwrite).
SUITES: Dict[str, Tuple[Tuple[str, Tuple[str, ...]], ...]] = {
    "quick": (
        ("smoke", ("nfsv3", "iscsi")),
        ("postmark", ("nfsv3", "iscsi")),
        ("randwrite", ("nfsv3", "iscsi")),
    ),
    "streaming": (
        ("seqread", ("nfsv3", "iscsi")),
        ("randread", ("nfsv3", "iscsi")),
        ("seqwrite", ("nfsv3", "iscsi")),
        ("randwrite", ("nfsv3", "iscsi")),
    ),
}


# -- running ------------------------------------------------------------------


def run_case(workload: str, kind: str, san: bool = False,
             telemetry: bool = False) -> Dict[str, Any]:
    """Run one traced workload on one stack; return its JSON-ready record.

    ``completion_time_s`` is the application's elapsed time;
    ``total_time_s`` additionally covers the quiesce (asynchronous
    write-back and journal settling), matching the paper's packet-capture
    window.  Message and byte counts include the quiesce traffic.

    With ``san=True`` the run carries the runtime sanitizers
    (:mod:`repro.check.simsan`) and fails loudly on any finding; the
    record itself is byte-identical to an unsanitized run.

    With ``telemetry=True`` the streaming collector rides along and its
    snapshot is attached under ``"__telemetry__"`` — the runner strips
    that key before results reach a suite document, and every other
    field stays byte-identical (telemetry probes are pure reads).
    """
    record, _stack = run_case_stack(workload, kind, san=san,
                                    telemetry=telemetry)
    return record


def run_case_stack(workload: str, kind: str, san: bool = False,
                   telemetry: bool = False) -> Tuple[Dict[str, Any], Any]:
    """:func:`run_case`, also returning the finished (traced) stack.

    The diff engine (:mod:`repro.obs.explain`) needs both: the JSON
    record for the headline figures and the live tracer for per-op
    message drift.  The record is the one :func:`run_case` would return.
    """
    # Imported lazily: repro.obs must stay importable while
    # repro.core.comparison (which imports repro.obs) initializes.
    from ..core.comparison import make_stack

    stack = make_stack(kind, trace=True, san=san, telemetry=telemetry)
    snap = stack.snapshot()
    start = stack.now
    stack.run(WORKLOADS[workload](stack.client), name=workload)
    elapsed = stack.now - start
    stack.quiesce()
    stack.check()
    delta = stack.delta(snap)
    profile = Profile(stack.tracer)

    attribution = {}
    for layer, stat in profile.attribution().items():
        attribution[layer] = {
            "spans": stat.spans,
            "inclusive_s": round(stat.inclusive, 9),
            "exclusive_s": round(stat.exclusive, 9),
        }
    syscalls = {}
    for name in sorted(stack.tracer.histograms):
        if not name.startswith("syscall:"):
            continue
        hist = stack.tracer.histograms[name]
        syscalls[name[len("syscall:"):]] = {
            "count": hist.count,
            "mean_ms": round(hist.mean * 1e3, 9),
            "p50_ms": round(hist.percentile(0.50) * 1e3, 9),
            "p95_ms": round(hist.percentile(0.95) * 1e3, 9),
            "p99_ms": round(hist.percentile(0.99) * 1e3, 9),
        }
    critical_path = [
        [segment_name, round(seconds, 9)]
        for segment_name, seconds, _hops
        in profile.critical_path_summary()[:_PATH_LIMIT]
    ]
    resources = {
        resource.name: resource.stats.as_dict()
        for resource in stack.resources()
    }
    record = {
        "workload": workload,
        "stack": kind,
        "completion_time_s": round(elapsed, 9),
        "total_time_s": round(stack.now, 9),
        "messages": delta.messages,
        "bytes": delta.total_bytes,
        "retransmissions": delta.retransmissions,
        "syscalls": syscalls,
        "attribution": attribution,
        "critical_path": critical_path,
        "resources": resources,
    }
    if stack.telemetry is not None:
        record["__telemetry__"] = stack.telemetry.snapshot()
    return record, stack


def suite_cells(suite: str, san: bool = False, telemetry: bool = False):
    """The suite as a list of runner cells (one per workload x stack).

    Cell ids stay ``workload/kind`` either way, so a sanitized (or
    telemetry-carrying) suite document is keyed identically to a plain
    one; ``san``/``telemetry`` only enter the cell params (and thus the
    cache key).
    """
    from ..core.runner import Cell

    if suite not in SUITES:
        raise ValueError("unknown suite %r; one of %s"
                         % (suite, sorted(SUITES)))
    cells = []
    for workload, kinds in SUITES[suite]:
        for kind in kinds:
            params = {"workload": workload, "stack": kind}
            if san:
                params["san"] = True
            if telemetry:
                params["telemetry"] = True
            cells.append(Cell("%s/%s" % (workload, kind), "bench_case",
                              params))
    return cells


def run_suite(suite: str, runner: Optional[Any] = None,
              san: bool = False, telemetry: bool = False) -> Dict[str, Any]:
    """Run every case of the named suite; return the versioned document.

    ``runner`` is an optional
    :class:`~repro.core.runner.ExperimentRunner` providing parallel
    fan-out and result caching; by default the cases run serially
    in-process with no cache.  Either way the case records are keyed and
    ordered by cell id, so the emitted document is byte-identical across
    ``--jobs`` settings — and, because sanitizers observe without
    perturbing, across ``san`` settings too.
    """
    from ..core.runner import ExperimentRunner

    if runner is None:
        runner = ExperimentRunner(jobs=None, use_cache=False)
    cases = runner.run(suite_cells(suite, san=san, telemetry=telemetry))
    return {"schema": SCHEMA_VERSION, "suite": suite, "cases": cases}


def write_bench(result: Dict[str, Any], path: str) -> None:
    """Write a suite result as stable, diffable JSON (sorted keys)."""
    with open(path, "w") as handle:
        json.dump(result, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_bench(path: str) -> Dict[str, Any]:
    """Load a ``BENCH_*.json`` document."""
    with open(path) as handle:
        return json.load(handle)


# -- comparison ---------------------------------------------------------------


def relative_change(old: Any, new: Any) -> Any:
    """``(new - old) / old`` with defined values on a zero baseline.

    Returns 0.0 when both values are zero and the string ``"new"`` when
    the baseline is zero but the current value is not — the comparison
    and diff engines must never divide by zero.  (A vanished quantity,
    ``old > 0, new == 0``, is plain ``-1.0``.)
    """
    if old == 0:
        return 0.0 if new == 0 else "new"
    return (new - old) / old


def compare(baseline: Dict[str, Any], current: Dict[str, Any],
            tolerance: float = 0.15,
            ) -> Tuple[List[Dict[str, Any]], List[str]]:
    """Diff two suite results: ``(regressions, notes)``.

    A regression is: a schema mismatch, a case present in the baseline
    but missing now, any change in the exact message count, or a
    completion time more than ``tolerance`` above the baseline.
    ``notes`` carries non-fatal observations (improvements, new cases).
    """
    regressions: List[Dict[str, Any]] = []
    notes: List[str] = []
    if baseline.get("schema") != current.get("schema"):
        regressions.append({
            "case": "(document)", "metric": "schema",
            "baseline": baseline.get("schema"),
            "current": current.get("schema"),
        })
        return regressions, notes
    old_cases = baseline.get("cases", {})
    new_cases = current.get("cases", {})
    for case in sorted(old_cases):
        old = old_cases[case]
        new = new_cases.get(case)
        if new is None:
            regressions.append({"case": case, "metric": "presence",
                                "baseline": "present", "current": "missing"})
            continue
        if new["messages"] != old["messages"]:
            regressions.append({"case": case, "metric": "messages",
                                "baseline": old["messages"],
                                "current": new["messages"],
                                "relative": relative_change(
                                    old["messages"], new["messages"])})
        t_old = old["completion_time_s"]
        t_new = new["completion_time_s"]
        if t_new > t_old * (1.0 + tolerance) + 1e-12:
            regressions.append({"case": case, "metric": "completion_time_s",
                                "baseline": t_old, "current": t_new,
                                "relative": relative_change(t_old, t_new)})
        elif t_old > 0 and t_new < t_old * (1.0 - tolerance):
            notes.append("%s: completion time improved %.3fs -> %.3fs"
                         % (case, t_old, t_new))
    for case in sorted(set(new_cases) - set(old_cases)):
        notes.append("%s: new case (no baseline)" % case)
    return regressions, notes


def compare_scale_documents(baseline: Dict[str, Any],
                            current: Dict[str, Any]) -> List[str]:
    """Diff two farm-scale documents; return the list of problems.

    Every field of a farm point is deterministic simulated outcome, so
    the comparison is *exact*: a schema change, a missing/new point, or
    any drifted value is a problem.  An empty list means the documents
    agree (derived ``series`` figures included, since they are pure
    functions of the points).
    """
    problems: List[str] = []
    if baseline.get("schema") != current.get("schema"):
        return ["schema: %r -> %r"
                % (baseline.get("schema"), current.get("schema"))]
    old_points = {point["id"]: point for point in baseline.get("points", ())}
    new_points = {point["id"]: point for point in current.get("points", ())}
    for point_id in sorted(old_points):
        if point_id not in new_points:
            problems.append("%s: missing from current" % point_id)
            continue
        old, new = old_points[point_id], new_points[point_id]
        for key in sorted(set(old) | set(new)):
            if old.get(key) != new.get(key):
                problems.append("%s: %s %r -> %r"
                                % (point_id, key, old.get(key),
                                   new.get(key)))
    for point_id in sorted(set(new_points) - set(old_points)):
        problems.append("%s: not in baseline" % point_id)
    if baseline.get("series") != current.get("series"):
        problems.append("series: derived figures drifted")
    return problems


def format_compare(regressions: List[Dict[str, Any]],
                   notes: List[str]) -> str:
    """Human-readable comparison verdict (one line per finding)."""
    lines = []
    for entry in regressions:
        lines.append("REGRESSION %s: %s %r -> %r" % (
            entry["case"], entry["metric"],
            entry["baseline"], entry["current"]))
    for note in notes:
        lines.append("note: %s" % note)
    if not regressions:
        lines.append("ok: no regressions beyond tolerance")
    return "\n".join(lines)


def format_compare_json(regressions: List[Dict[str, Any]],
                        notes: List[str]) -> str:
    """Machine-readable comparison verdict (one stable JSON document).

    The structure CI annotations consume: the same regression entries
    :func:`compare` produced, the notes verbatim, and an ``ok`` flag
    mirroring the exit code (``not regressions``).  Keys are sorted and
    the output ends in a newline, so equal inputs give equal bytes.
    """
    return json.dumps(
        {"ok": not regressions, "regressions": regressions, "notes": notes},
        indent=2, sort_keys=True,
    ) + "\n"
