"""Observability for the simulated testbed: tracing, histograms, vmstat.

The paper observed its live testbed with Ethereal (packet traces),
``nfsstat`` (per-op counters), and ``vmstat`` (utilization sampling).
This package is the simulated equivalent of all three:

* :class:`~repro.obs.tracer.Tracer` records protocol messages, causal
  spans across every layer, point events, latency histograms, and sampled
  utilization timelines.  The default :data:`~repro.obs.tracer.NULL_TRACER`
  is a disabled no-op, so untraced runs are bit-identical to the
  uninstrumented simulator;
* :mod:`~repro.obs.export` renders a recording as a JSONL packet trace, a
  per-op summary table, or a Chrome ``trace_event`` file for
  ``chrome://tracing`` / Perfetto;
* :class:`~repro.obs.proxy.TracedClient` roots each causal tree at the
  system call the workload issued;
* :class:`~repro.obs.profile.Profile` turns a recording into per-layer
  time attribution, critical paths, and queueing analytics (the analysis
  behind the paper's Tables 5/9/10);
* :mod:`~repro.obs.bench` runs named workload suites on both stacks and
  emits/compares schema-versioned ``BENCH_*.json`` documents — the
  ``repro bench`` regression gate;
* :mod:`~repro.obs.telemetry` is the *scale-out* counterpart of the
  tracer: opt-in, bounded-memory streaming rollups of every tier
  (utilization, queue depth, rates), invariant watchers over the
  stream, run heartbeats on stderr, and associative cross-worker
  merging — rendered by :mod:`~repro.obs.dashboard` as ASCII timeline
  dashboards or a self-contained HTML export (``repro dash``).

* :mod:`~repro.obs.explain` is the *differential* layer: it diffs two
  runs (stack vs stack, baseline vs candidate bench JSON, faulted vs
  clean) into a deterministic report — per-layer time deltas that sum
  exactly to the completion-time delta, per-op message drift, queueing
  and telemetry deltas, and a ranked plain-English blame list
  (``repro explain``).  It also hosts the
  :class:`~repro.obs.explain.FlightRecorder`, a bounded ring of recent
  kernel events/messages dumped as evidence when sanitizer or telemetry
  findings fire.

Build a traced stack with ``make_stack(kind, trace=True)`` and read
``stack.tracer`` after the run, or use the ``repro trace`` /
``repro bench`` CLIs; ``make_stack(kind, telemetry=True)`` attaches the
streaming collector as ``stack.telemetry`` and
``make_stack(kind, recorder=True)`` the flight recorder as
``stack.recorder``.
"""

from .bench import (
    SUITES,
    WORKLOADS,
    compare,
    format_compare,
    format_compare_json,
    load_bench,
    run_case,
    run_suite,
    write_bench,
)
from .dashboard import render_dashboard, render_html, write_html
from .explain import (
    FlightRecorder,
    explain_runs,
    format_explain,
    format_explain_json,
    op_drift,
    render_explain_html,
    render_timeline_diff,
    run_side,
    side_from_bench,
    write_explain_html,
)
from .telemetry import (
    Heartbeat,
    SeriesRollup,
    Telemetry,
    TelemetryFinding,
    merge_rollups,
    merge_snapshots,
)
# render_timeline_diff is re-exported from .explain above (its new
# home); repro.obs.export keeps a deprecated wrapper of the same name.
from .export import (
    chrome_trace,
    format_op_summary,
    op_summary,
    packet_trace_lines,
    render_span_tree,
    write_chrome_trace,
    write_packet_trace,
)
from .profile import (
    LayerStat,
    PathSegment,
    Profile,
    format_attribution,
    format_critical_path,
    format_resource_report,
    resource_report,
)
from .proxy import SYSCALL_NAMES, TracedClient
from .tracer import (
    NULL_TRACER,
    CounterSample,
    LatencyHistogram,
    MessageEvent,
    NullTracer,
    PointEvent,
    Span,
    Tracer,
)

__all__ = [
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "Span",
    "PointEvent",
    "MessageEvent",
    "CounterSample",
    "LatencyHistogram",
    "TracedClient",
    "SYSCALL_NAMES",
    "chrome_trace",
    "write_chrome_trace",
    "packet_trace_lines",
    "write_packet_trace",
    "op_summary",
    "format_op_summary",
    "render_span_tree",
    "render_timeline_diff",
    "Profile",
    "PathSegment",
    "LayerStat",
    "format_attribution",
    "format_critical_path",
    "resource_report",
    "format_resource_report",
    "SUITES",
    "WORKLOADS",
    "run_case",
    "run_suite",
    "write_bench",
    "load_bench",
    "compare",
    "format_compare",
    "format_compare_json",
    "FlightRecorder",
    "op_drift",
    "run_side",
    "side_from_bench",
    "explain_runs",
    "format_explain",
    "format_explain_json",
    "render_explain_html",
    "write_explain_html",
    "Telemetry",
    "TelemetryFinding",
    "SeriesRollup",
    "Heartbeat",
    "merge_rollups",
    "merge_snapshots",
    "render_dashboard",
    "render_html",
    "write_html",
]
