"""The simulated-time profiler: where do the paper's seconds actually go?

The paper's explanations hinge on attribution — which layer burned the
time (Tables 5, 9, 10), which causal chain made RANDOM WRITE slow on NFS
(Table 4), how deep the disk queues ran.  :class:`Profile` answers those
questions from a :class:`~repro.obs.tracer.Tracer` recording:

* **attribution** — per-layer inclusive and exclusive simulated time
  (syscall -> RPC/SCSI -> journal -> cache -> RAID -> disk).  *Inclusive*
  is the plain sum of span durations per layer.  *Exclusive* comes from
  the critical-path tiling below, so exclusive times for one top-level
  operation always sum exactly to that operation's duration — no
  double-counting across nested or parallel spans;
* **critical paths** — for any top-level span, the longest
  causally-dependent chain of segments explaining its completion time.
  Every instant of the root's interval is attributed to the innermost
  span on the *blocking chain*: walking backward from the root's end,
  time is charged to the child that finished last, recursively, and gaps
  no child covers are charged to the parent itself.  The segments tile
  the root's interval exactly, so their lengths sum to the root duration
  (the profiler's conservation law);
* **queueing analytics** — per-resource utilization, wait-time
  percentiles, and exact time-average queue depth, read from the
  :class:`~repro.sim.stats.ResourceStats` every
  :class:`~repro.sim.resources.Resource` maintains.

Build one with ``Profile(stack.tracer)`` after a traced run, or let
``repro bench`` embed the numbers in its ``BENCH_*.json`` output.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from .tracer import Span, Tracer

__all__ = [
    "PathSegment",
    "LayerStat",
    "Profile",
    "format_attribution",
    "format_critical_path",
    "resource_report",
    "format_resource_report",
]

# Canonical display order: request flow from the application downward.
LAYER_ORDER = ("syscall", "rpc", "nfs", "scsi", "cache", "journal",
               "raid", "disk")


class PathSegment:
    """One piece of a critical path: ``span`` was the blocker in [start, end]."""

    __slots__ = ("span", "start", "end")

    def __init__(self, span: Span, start: float, end: float):
        self.span = span
        self.start = start
        self.end = end

    @property
    def duration(self) -> float:
        """Simulated seconds this segment contributes to the path."""
        return self.end - self.start

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<PathSegment %s %.6f..%.6f>" % (
            self.span.name, self.start, self.end)


class LayerStat:
    """Per-layer attribution totals (see :meth:`Profile.attribution`)."""

    __slots__ = ("layer", "spans", "inclusive", "exclusive")

    def __init__(self, layer: str):
        self.layer = layer
        self.spans = 0          # finished spans in this layer
        self.inclusive = 0.0    # sum of span durations
        self.exclusive = 0.0    # time on the blocking chain

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<LayerStat %s n=%d incl=%.6f excl=%.6f>" % (
            self.layer, self.spans, self.inclusive, self.exclusive)


def _critical_path(root: Span, children: Dict[Optional[int], List[Span]],
                   ) -> List[PathSegment]:
    """Tile ``[root.start, root.end]`` with blocking-chain segments."""
    if root.end is None:
        return []
    segments: List[PathSegment] = []

    def walk(span: Span, lo: float, hi: float) -> None:
        # Attribute [lo, hi] to `span` and its descendants, walking
        # backward from hi: the child that ends last is the blocker.
        t = hi
        kids = [c for c in children.get(span.id, ())
                if c.end is not None and c.end > lo and c.start < hi]
        kids.sort(key=lambda c: (c.end, c.start, c.id))
        for child in reversed(kids):
            if t <= lo:
                break
            child_end = min(child.end, t)
            child_lo = max(child.start, lo)
            if child_end <= child_lo:
                continue
            if child_end < t:
                segments.append(PathSegment(span, child_end, t))
            walk(child, child_lo, child_end)
            t = child_lo
        if t > lo:
            segments.append(PathSegment(span, lo, t))

    walk(root, root.start, root.end)
    segments.reverse()
    return segments


class Profile:
    """Attribution, critical paths, and totals for one traced run.

    ``roots`` defaults to the finished ``syscall``-category spans (the
    paper's unit of account); when a recording has none, spans without a
    recorded parent are used instead.  Workload syscalls are serial, so
    the default roots never overlap and per-layer exclusive times sum to
    at most the total simulated time.
    """

    def __init__(self, tracer: Tracer, roots: Optional[Sequence[Span]] = None):
        self.tracer = tracer
        self._children = tracer.span_children()
        self._paths: Dict[int, List[PathSegment]] = {}
        if roots is None:
            roots = [s for s in tracer.spans if s.cat == "syscall"]
            if not roots:
                known = {s.id for s in tracer.spans}
                roots = [s for s in tracer.spans
                         if s.parent is None or s.parent not in known]
        self.roots: List[Span] = sorted(roots, key=lambda s: (s.start, s.id))

    # -- structure ------------------------------------------------------------

    def subtree(self, root: Span) -> List[Span]:
        """``root`` plus every finished descendant (cached child index)."""
        out: List[Span] = []
        stack = [root]
        while stack:
            span = stack.pop()
            out.append(span)
            stack.extend(reversed(self._children.get(span.id, ())))
        return out

    def critical_path(self, root: Span) -> List[PathSegment]:
        """The blocking-chain tiling of ``root``'s interval, in time order.

        The segment durations sum to ``root.duration`` exactly — every
        instant is attributed to precisely one span.  Tilings are
        memoized per root: :meth:`attribution` and
        :meth:`critical_path_summary` both traverse every root, and the
        tree (hence the tiling) cannot change after the recording.
        """
        cached = self._paths.get(root.id)
        if cached is None:
            cached = self._paths[root.id] = _critical_path(
                root, self._children)
        return cached

    @property
    def accounted(self) -> float:
        """Total simulated time under the roots (sum of root durations)."""
        return sum(root.duration for root in self.roots)

    # -- attribution ----------------------------------------------------------

    def attribution(self) -> Dict[str, LayerStat]:
        """Per-layer inclusive/exclusive attribution over the roots.

        Layers are span categories (``syscall``, ``rpc``, ``nfs``,
        ``scsi``, ``cache``, ``journal``, ``raid``, ``disk``), returned
        in request-flow order.  Exclusive times are critical-path
        segments, so they sum to :attr:`accounted` exactly.
        """
        stats: Dict[str, LayerStat] = {}

        def stat(layer: str) -> LayerStat:
            entry = stats.get(layer)
            if entry is None:
                entry = stats[layer] = LayerStat(layer)
            return entry

        for root in self.roots:
            for segment in self.critical_path(root):
                stat(segment.span.cat).exclusive += segment.duration
            for span in self.subtree(root):
                entry = stat(span.cat)
                entry.spans += 1
                entry.inclusive += span.duration
        ordered: Dict[str, LayerStat] = {}
        for layer in LAYER_ORDER:
            if layer in stats:
                ordered[layer] = stats.pop(layer)
        for layer in sorted(stats):
            ordered[layer] = stats[layer]
        return ordered

    def critical_path_summary(self, name: Optional[str] = None,
                              ) -> List[Tuple[str, float, int]]:
        """Rank blocking segments across roots: ``(span name, seconds, hops)``.

        ``name`` filters the roots (e.g. ``"syscall:pwrite"`` answers
        "why are random writes slow"); ``None`` aggregates every root.
        Sorted by total attributed seconds, descending.
        """
        totals: Dict[str, List[float]] = {}
        for root in self.roots:
            if name is not None and root.name != name:
                continue
            for segment in self.critical_path(root):
                entry = totals.setdefault(segment.span.name, [0.0, 0])
                entry[0] += segment.duration
                entry[1] += 1
        ranked = [(span_name, total, int(hops))
                  for span_name, (total, hops) in totals.items()]
        ranked.sort(key=lambda row: (-row[1], row[0]))
        return ranked


# -- text renderers -----------------------------------------------------------


def _table(headers: List[str], rows: List[List[Any]]) -> str:
    widths = [max(len(str(headers[i])),
                  max((len(str(r[i])) for r in rows), default=0))
              for i in range(len(headers))]
    out = ["  ".join(str(h).ljust(w) for h, w in zip(headers, widths))]
    out.append("-" * len(out[0]))
    for row in rows:
        out.append("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
    return "\n".join(out)


def format_attribution(profile: Profile) -> str:
    """The per-layer attribution as an aligned text table.

    ``excl %`` is each layer's share of the total accounted time (the
    column sums to 100% by the profiler's conservation law).
    """
    attribution = profile.attribution()
    total = profile.accounted
    if not attribution or total <= 0.0:
        return "(no spans to attribute)"
    rows = []
    for layer, stat in attribution.items():
        rows.append([
            layer, stat.spans,
            "%.3f" % (stat.inclusive * 1e3),
            "%.3f" % (stat.exclusive * 1e3),
            "%5.1f%%" % (100.0 * stat.exclusive / total),
        ])
    rows.append(["total", sum(s.spans for s in attribution.values()),
                 "", "%.3f" % (total * 1e3), "100.0%"])
    return _table(["layer", "spans", "incl ms", "excl ms", "excl %"], rows)


def format_critical_path(profile: Profile, name: Optional[str] = None,
                         limit: int = 12) -> str:
    """The ranked critical-path summary as an aligned text table.

    One row per blocking span name: total seconds attributed to it across
    the matching roots, its share of those roots' total duration, and how
    many path segments it appeared in.  ``limit`` truncates the ranking
    (0 = all rows).
    """
    ranked = profile.critical_path_summary(name)
    matching = [r for r in profile.roots if name is None or r.name == name]
    total = sum(root.duration for root in matching)
    if not ranked or total <= 0.0:
        return "(no critical path: no matching finished roots)"
    if limit:
        shown = ranked[:limit]
    else:
        shown = ranked
    rows = []
    for rank, (span_name, seconds, hops) in enumerate(shown, start=1):
        rows.append([rank, span_name, "%.3f" % (seconds * 1e3),
                     "%5.1f%%" % (100.0 * seconds / total), hops])
    title = "critical path for %s (%d ops, %.3f ms):" % (
        name if name is not None else "all roots", len(matching), total * 1e3)
    table = _table(["rank", "segment", "ms", "share", "hops"], rows)
    if len(shown) < len(ranked):
        table += "\n(... %d more segments)" % (len(ranked) - len(shown))
    return title + "\n" + table


def resource_report(resources: Sequence[Any],
                    ) -> Tuple[List[str], List[List[Any]]]:
    """Build the queueing-analytics table: ``(headers, rows)``.

    One row per resource, read from its
    :class:`~repro.sim.stats.ResourceStats`: utilization, acquisition and
    contention counts, mean/p95 wait, and exact time-average queue depth.
    """
    headers = ["resource", "cap", "util", "acq", "queued",
               "mean wait ms", "p95 wait ms", "avg queue"]
    rows: List[List[Any]] = []
    for resource in resources:
        stats = resource.stats
        rows.append([
            resource.name or "(anonymous)",
            resource.capacity,
            "%5.1f%%" % (100.0 * stats.utilization()),
            stats.acquisitions,
            stats.contended,
            "%.3f" % (stats.mean_wait() * 1e3),
            "%.3f" % (stats.wait_hist.percentile(0.95) * 1e3),
            "%.3f" % stats.mean_queue_length(),
        ])
    return headers, rows


def format_resource_report(resources: Sequence[Any]) -> str:
    """The queueing-analytics table as aligned text."""
    headers, rows = resource_report(resources)
    if not rows:
        return "(no resources)"
    return _table(headers, rows)
