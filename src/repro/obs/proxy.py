"""Syscall-level tracing proxy.

The root of every causal tree is the system call the workload issued —
that is where the paper's tables start counting.  Rather than instrument
the two client implementations (:class:`~repro.fs.vfs.Vfs` and
:class:`~repro.nfs.client.NfsClient`) a :class:`TracedClient` wraps
whichever one the stack built and brackets each syscall coroutine in a
``syscall:<name>`` span.  With tracing disabled the stack exposes the raw
client object, so the untraced path is bit-identical to an uninstrumented
build.
"""

from __future__ import annotations

from typing import Any, Generator

from .tracer import NullTracer

__all__ = ["TracedClient", "SYSCALL_NAMES"]

# The coroutine syscalls shared by both client surfaces.  ``lseek`` is a
# plain function (no I/O) and stays unwrapped; lifecycle helpers
# (quiesce/drop_caches/remount_cold) are harness plumbing, not syscalls.
SYSCALL_NAMES = frozenset({
    "mkdir", "rmdir", "chdir", "readdir", "symlink", "readlink",
    "creat", "open", "close", "unlink", "link", "rename", "truncate",
    "chmod", "chown", "access", "stat", "utime", "read", "write",
    "pread", "pwrite", "fstat", "fsync",
})


class TracedClient:
    """Wraps a stack client; each syscall coroutine runs under a span.

    Every attribute not in :data:`SYSCALL_NAMES` is forwarded verbatim, so
    the proxy is a drop-in replacement for the wrapped client (workloads,
    quiesce, and fd bookkeeping all pass straight through).
    """

    def __init__(self, client: Any, tracer: NullTracer,
                 track: str = "client"):
        self._client = client
        self._tracer = tracer
        self._track = track

    @property
    def wrapped(self) -> Any:
        """The underlying client object."""
        return self._client

    def __getattr__(self, name: str) -> Any:
        attr = getattr(self._client, name)
        if name in SYSCALL_NAMES:
            tracer = self._tracer
            track = self._track

            def traced_syscall(*args: Any, **kwargs: Any) -> Generator:
                return tracer.wrap(
                    "syscall:" + name, attr(*args, **kwargs),
                    cat="syscall", track=track,
                )

            traced_syscall.__name__ = name
            return traced_syscall
        return attr
