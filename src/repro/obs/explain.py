"""``repro explain``: a differential diagnosis engine for paired runs.

The paper's contribution is not the numbers but the *explanation* of
them: Table 4's random-write gap is attributed to NFS's synchronous
per-page WRITE and meta-data/journal update traffic, by diffing two
packet captures of the same workload.  This module is that methodology
as a tool.  It takes two runs — NFS vs iSCSI, baseline vs candidate
bench documents, faulted vs clean, any two workload/stack/param combos —
and produces one structured, deterministic delta report:

* **completion-time decomposition** — the paired critical-path
  attribution of :class:`~repro.obs.profile.Profile`, per layer, plus an
  ``(unattributed)`` remainder term per side.  All delta arithmetic runs
  on integer nanoseconds, so the per-layer deltas sum *exactly* to the
  total completion-time delta (an invariant the tests assert), and the
  B-vs-A report is the exact negation of A-vs-B;
* **message drift per op** — request/reply/retransmission counts and
  bytes per RPC/SCSI op (live runs), with ops classified into data
  transfer vs meta-data/journal/control traffic — the paper's
  message-count argument, localized;
* **queueing deltas** — per-resource utilization, mean depth, and wait
  percentiles from :class:`~repro.sim.stats.ResourceStats`;
* **telemetry series deltas** — when both sides carried the streaming
  collector of :mod:`repro.obs.telemetry`;
* **blame** — everything above ranked by contribution into a top-N list
  with plain-English verdict lines.

Report producers: :func:`run_side` (live traced run) and
:func:`side_from_bench` (a ``BENCH_*.json`` case record) both yield the
same *side document* shape; :func:`explain_runs` diffs any two sides.
Renderers: :func:`format_explain` (text), :func:`format_explain_json`
(stable JSON — equal reports give equal bytes), and
:func:`render_explain_html` (self-contained HTML, the CI artifact).

The module also hosts :class:`FlightRecorder`: a bounded ring of recent
kernel events and wire messages, cheap enough to leave attached, that
dumps its last-N context window as a span-linked JSON snapshot whenever
a simsan S-code or telemetry T-watcher finding fires — scale-out
findings arrive with evidence.  The disabled layer is the attribute
being ``None``; every hook site guards with ``if recorder is not
None:`` (simlint rule O303), so recorder-off runs execute the exact
same event sequence as before the layer existed.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Any, Dict, List, Optional, Tuple

from .bench import relative_change
from .dashboard import _escape
from .profile import LAYER_ORDER

__all__ = [
    "REPORT_VERSION",
    "FlightRecorder",
    "op_drift",
    "run_side",
    "side_from_bench",
    "explain_runs",
    "format_explain",
    "format_explain_json",
    "render_explain_html",
    "write_explain_html",
    "render_timeline_diff",
]

REPORT_VERSION = 1

# Ops that move file/block payload; everything else (GETATTR, LOOKUP,
# COMMIT, SCSI_SYNC, logins, callbacks, ...) is meta-data/journal/control
# traffic — the distinction the paper's Table 4 explanation turns on.
_DATA_OPS = frozenset({"READ", "WRITE", "SCSI_READ", "SCSI_WRITE"})

_OP_FIELDS = ("requests", "replies", "retransmits", "req_bytes",
              "rep_bytes")

_RESOURCE_FIELDS = ("utilization", "mean_queue", "mean_wait_s",
                    "p95_wait_s", "acquisitions", "contended")

# Calendar-record kinds, mirroring the numeric constants of
# repro.sim.kernel (recorder rings store the raw int; dumps decode it).
_KIND_NAMES = ("event", "call1", "resume", "throw", "call")


# -- flight recorder ----------------------------------------------------------


class FlightRecorder:
    """A bounded ring of recent kernel events and wire messages.

    The black box for findings: components hold ``recorder = None`` by
    default and hot paths guard with ``if recorder is not None:`` (the
    O303 pattern), so the disabled layer costs one attribute load and
    branch.  Enabled, each kernel-event note is a tuple append into a
    fixed-size :class:`collections.deque` — cheap enough to leave on for
    scale-out runs.  When a sanitizer S-code or telemetry T-watcher
    finding fires, :meth:`dump` snapshots the current context window
    (span-linked via each message's ``span_id``) into :attr:`dumps`.

    The recorder observes and never schedules, so an attached recorder
    leaves the simulated event sequence byte-identical.
    """

    enabled = True

    def __init__(self, sim: Any, capacity: int = 256):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self.events: Any = deque(maxlen=capacity)
        self.messages: Any = deque(maxlen=capacity)
        self.dumps: List[Dict[str, Any]] = []

    def note_event(self, record: Tuple[Any, ...]) -> None:
        """Record one popped calendar record (kernel hot-path hook)."""
        target = record[3]
        name = getattr(target, "name", None)
        if not isinstance(name, str):
            name = getattr(target, "__qualname__", None)
            if name is None:
                name = type(target).__name__
        self.events.append((record[0], record[1], record[2], name))

    def note_message(self, direction: str, message: Any) -> None:
        """Record one wire message (transport hook, both directions)."""
        self.messages.append((
            self.sim.now, direction, message.op, message.kind,
            message.header_bytes + message.payload_bytes, message.xid,
            bool(message.is_retransmission), message.span_id))

    def context(self) -> Dict[str, Any]:
        """The current rings as one JSON-ready context window."""
        return {
            "t": round(self.sim.now, 9),
            "capacity": self.capacity,
            "events": [
                {"t": round(t, 9), "seq": seq,
                 "kind": (_KIND_NAMES[kind]
                          if 0 <= kind < len(_KIND_NAMES) else str(kind)),
                 "target": target}
                for t, seq, kind, target in self.events
            ],
            "messages": [
                {"t": round(t, 9), "direction": direction, "op": op,
                 "kind": kind, "bytes": size, "xid": xid,
                 "retransmission": retrans, "span_id": span_id}
                for t, direction, op, kind, size, xid, retrans, span_id
                in self.messages
            ],
        }

    def dump(self, code: str, source: str, message: str) -> Dict[str, Any]:
        """Snapshot the context window for one finding; returns the dump.

        ``code`` is the finding code (``S4xx``/``T5xx``), ``source`` the
        reporting subsystem or series, ``message`` the human text.  The
        dump is appended to :attr:`dumps` so CLI consumers can ship every
        finding with its evidence attached.
        """
        snapshot = {"code": code, "source": source, "message": message,
                    "context": self.context()}
        self.dumps.append(snapshot)
        return snapshot


# -- side documents -----------------------------------------------------------


def op_drift(tracer: Any) -> Dict[str, Dict[str, int]]:
    """Per-op message counters from a live tracer's packet trace.

    Returns ``{op: {requests, replies, retransmits, req_bytes,
    rep_bytes}}`` — the raw material of the report's message-drift
    section (bench JSON documents carry only totals, so this section is
    live-run only).
    """
    ops: Dict[str, Dict[str, int]] = {}
    for msg in tracer.messages:
        entry = ops.setdefault(msg.op, {field: 0 for field in _OP_FIELDS})
        if msg.kind == "request":
            entry["requests"] += 1
            entry["req_bytes"] += msg.size
            if msg.retransmission:
                entry["retransmits"] += 1
        else:
            entry["replies"] += 1
            entry["rep_bytes"] += msg.size
    return ops


def side_from_bench(record: Dict[str, Any],
                    label: Optional[str] = None) -> Dict[str, Any]:
    """Build one comparison side from a ``BENCH_*.json`` case record.

    The side document is the engine's sole input shape; bench-derived
    sides omit the per-op drift (bench documents carry only totals) and
    carry telemetry only when the record does.  Optional record fields
    (bytes, retransmissions, attribution, resources) default to empty so
    trimmed documents still diff.
    """
    side: Dict[str, Any] = {
        "label": label if label is not None else record.get("stack", "?"),
        "workload": record.get("workload"),
        "stack": record.get("stack"),
        "completion_time_s": record["completion_time_s"],
        "messages": record["messages"],
        "bytes": record.get("bytes", 0),
        "retransmissions": record.get("retransmissions", 0),
        "attribution": record.get("attribution", {}),
        "resources": record.get("resources", {}),
    }
    if "__telemetry__" in record:
        side["telemetry"] = record["__telemetry__"]
    return side


def run_side(workload: str, kind: str, san: bool = False,
             telemetry: bool = False,
             label: Optional[str] = None) -> Dict[str, Any]:
    """Run one traced workload on one stack; return its side document.

    The live form of :func:`side_from_bench`: the same bench-record
    fields plus the per-op message drift from the packet trace (and the
    telemetry snapshot when ``telemetry=True``).
    """
    from .bench import run_case_stack

    record, stack = run_case_stack(workload, kind, san=san,
                                   telemetry=telemetry)
    side = side_from_bench(record, label=label if label is not None else kind)
    side["ops"] = op_drift(stack.tracer)
    return side


# -- the diff engine ----------------------------------------------------------


def _ns(seconds: float) -> int:
    """Seconds to integer nanoseconds (bench records round to 9 places)."""
    return int(round(seconds * 1e9))


def _layer_names(names: Any) -> List[str]:
    ordered = [name for name in LAYER_ORDER if name in names]
    ordered += sorted(name for name in names if name not in LAYER_ORDER)
    return ordered


def _ratio_text(low: Any, high: Any) -> str:
    if low:
        return "%.1fx" % (high / low)
    return "all" if high else "equal"


def _layer_verdict(entry: Dict[str, Any], total_ns: int) -> str:
    a_ms = entry["a_s"] * 1e3
    b_ms = entry["b_s"] * 1e3
    if total_ns and entry["share"] is not None:
        return ("%.0f%% of the %+.3f ms completion delta is %s time "
                "(%.3f -> %.3f ms)"
                % (100.0 * entry["share"], total_ns / 1e6, entry["layer"],
                   a_ms, b_ms))
    return ("%s time moved %+.3f ms (%.3f -> %.3f ms)"
            % (entry["layer"], entry["delta_ns"] / 1e6, a_ms, b_ms))


def _message_verdict(label_a: str, label_b: str, msgs_a: int, msgs_b: int,
                     ops: Optional[List[Dict[str, Any]]],
                     meta: Optional[Dict[str, int]]) -> str:
    if msgs_a >= msgs_b:
        heavy, light, high, low = label_a, label_b, msgs_a, msgs_b
    else:
        heavy, light, high, low = label_b, label_a, msgs_b, msgs_a
    head = ("%s sent %s the protocol messages of %s (%d vs %d)"
            % (heavy, _ratio_text(low, high), light, high, low))
    if not ops:
        return head
    drifts = sorted(ops, key=lambda e: (-abs(e["delta"]["requests"]),
                                        e["op"]))
    parts = ["%s %d -> %d" % (e["op"], e["a"]["requests"],
                              e["b"]["requests"])
             for e in drifts[:3] if e["delta"]["requests"]]
    if parts:
        head += ": " + ", ".join(parts)
    if meta is not None and meta["delta"]:
        head += ("; meta-data/journal message traffic %d -> %d"
                 % (meta["a"], meta["b"]))
    return head


def explain_runs(side_a: Dict[str, Any], side_b: Dict[str, Any],
                 top: int = 8) -> Dict[str, Any]:
    """Diff two side documents into one structured, deterministic report.

    Every delta field is ``b - a``, so swapping the sides negates every
    delta exactly (integer nanoseconds for times, plain integers for
    counts, IEEE negation for float deltas) and leaves the blame ranking
    order unchanged (symmetric scores).  The per-layer ``delta_ns``
    values — including the ``(unattributed)`` remainder — sum exactly to
    ``delta["completion_time_ns"]`` by construction.
    """
    label_a = side_a.get("label", "a")
    label_b = side_b.get("label", "b")
    a_ns = _ns(side_a["completion_time_s"])
    b_ns = _ns(side_b["completion_time_s"])
    delta_ns = b_ns - a_ns

    # Layers: exclusive-time deltas plus the unattributed remainder.
    attr_a = side_a.get("attribution", {})
    attr_b = side_b.get("attribution", {})
    layers: List[Dict[str, Any]] = []
    accounted_a = 0
    accounted_b = 0
    for name in _layer_names(set(attr_a) | set(attr_b)):
        la = _ns(attr_a.get(name, {}).get("exclusive_s", 0.0))
        lb = _ns(attr_b.get(name, {}).get("exclusive_s", 0.0))
        accounted_a += la
        accounted_b += lb
        layers.append(_layer_entry(name, la, lb, delta_ns))
    layers.append(_layer_entry("(unattributed)", a_ns - accounted_a,
                               b_ns - accounted_b, delta_ns))

    # Per-op message drift (live runs only) + meta/data aggregates.
    ops_a = side_a.get("ops")
    ops_b = side_b.get("ops")
    ops: Optional[List[Dict[str, Any]]] = None
    meta: Optional[Dict[str, int]] = None
    data: Optional[Dict[str, int]] = None
    if ops_a is not None and ops_b is not None:
        ops = []
        meta = {"a": 0, "b": 0}
        data = {"a": 0, "b": 0}
        for op in sorted(set(ops_a) | set(ops_b)):
            za = ops_a.get(op, {})
            zb = ops_b.get(op, {})
            a_fields = {field: int(za.get(field, 0)) for field in _OP_FIELDS}
            b_fields = {field: int(zb.get(field, 0)) for field in _OP_FIELDS}
            family = "data" if op in _DATA_OPS else "meta"
            ops.append({
                "op": op,
                "family": family,
                "a": a_fields,
                "b": b_fields,
                "delta": {field: b_fields[field] - a_fields[field]
                          for field in _OP_FIELDS},
                "requests_ratio": relative_change(a_fields["requests"],
                                                  b_fields["requests"]),
            })
            bucket = data if family == "data" else meta
            bucket["a"] += a_fields["requests"]
            bucket["b"] += b_fields["requests"]
        meta["delta"] = meta["b"] - meta["a"]
        data["delta"] = data["b"] - data["a"]

    # Per-resource queueing deltas.
    res_a = side_a.get("resources", {})
    res_b = side_b.get("resources", {})
    resources: List[Dict[str, Any]] = []
    for name in sorted(set(res_a) | set(res_b)):
        ra = res_a.get(name, {})
        rb = res_b.get(name, {})
        a_fields = {field: ra.get(field, 0) or 0
                    for field in _RESOURCE_FIELDS}
        b_fields = {field: rb.get(field, 0) or 0
                    for field in _RESOURCE_FIELDS}
        resources.append({
            "resource": name,
            "a": a_fields,
            "b": b_fields,
            "delta": {field: b_fields[field] - a_fields[field]
                      for field in _RESOURCE_FIELDS},
        })

    # Telemetry-rollup series deltas (both sides must carry a snapshot).
    telemetry = _telemetry_deltas(side_a.get("telemetry"),
                                  side_b.get("telemetry"))

    # Blame: rank everything by a symmetric contribution score.  Layers
    # score against the larger of (|total delta|, either completion
    # time); message entries against the larger message count — both
    # invariant under side swap, so A-vs-B and B-vs-A rank identically.
    msgs_a = side_a["messages"]
    msgs_b = side_b["messages"]
    rex_a = side_a.get("retransmissions", 0)
    rex_b = side_b.get("retransmissions", 0)
    denominator = max(abs(delta_ns), a_ns, b_ns, 1)
    candidates: List[Dict[str, Any]] = []
    for entry in layers:
        candidates.append({
            "kind": "layer",
            "name": entry["layer"],
            "score": abs(entry["delta_ns"]) / denominator,
            "verdict": _layer_verdict(entry, delta_ns),
        })
    if msgs_a != msgs_b:
        candidates.append({
            "kind": "messages",
            "name": "message-traffic",
            "score": abs(msgs_b - msgs_a) / max(msgs_a, msgs_b, 1),
            "verdict": _message_verdict(label_a, label_b, msgs_a, msgs_b,
                                        ops, meta),
        })
    if rex_a != rex_b:
        candidates.append({
            "kind": "retransmissions",
            "name": "retransmissions",
            "score": abs(rex_b - rex_a) / max(msgs_a, msgs_b, 1),
            "verdict": ("retransmissions moved %d -> %d" % (rex_a, rex_b)),
        })
    candidates.sort(key=lambda e: (-e["score"], e["kind"], e["name"]))
    blame = candidates[:top]

    workload_a = side_a.get("workload")
    workload_b = side_b.get("workload")
    workload = (workload_a if workload_a == workload_b
                else "%s vs %s" % (workload_a, workload_b))
    headline = ("%s completes %s in %.6f s vs %.6f s for %s "
                "(delta %+.3f ms, messages %d vs %d)"
                % (label_b, workload, side_b["completion_time_s"],
                   side_a["completion_time_s"], label_a, delta_ns / 1e6,
                   msgs_b, msgs_a))
    verdicts = [headline] + [entry["verdict"] for entry in blame[:3]]

    return {
        "version": REPORT_VERSION,
        "workload": workload,
        "a": _side_summary(side_a, label_a),
        "b": _side_summary(side_b, label_b),
        "delta": {
            "completion_time_ns": delta_ns,
            "completion_time_s": delta_ns / 1e9,
            "messages": msgs_b - msgs_a,
            "bytes": side_b["bytes"] - side_a["bytes"],
            "retransmissions": rex_b - rex_a,
        },
        "layers": layers,
        "ops": ops,
        "meta_messages": meta,
        "data_messages": data,
        "resources": resources,
        "telemetry": telemetry,
        "blame": blame,
        "verdicts": verdicts,
    }


def _layer_entry(name: str, a_layer_ns: int, b_layer_ns: int,
                 total_ns: int) -> Dict[str, Any]:
    delta = b_layer_ns - a_layer_ns
    # `+ 0.0` normalizes the -0.0 a zero delta over a negative total
    # produces; the share is symmetric under side swap either way.
    share = (delta / total_ns + 0.0) if total_ns else None
    return {
        "layer": name,
        "a_s": a_layer_ns / 1e9,
        "b_s": b_layer_ns / 1e9,
        "delta_ns": delta,
        "delta_s": delta / 1e9,
        "share": share,
    }


def _side_summary(side: Dict[str, Any], label: str) -> Dict[str, Any]:
    return {
        "label": label,
        "workload": side.get("workload"),
        "stack": side.get("stack"),
        "completion_time_s": side["completion_time_s"],
        "messages": side["messages"],
        "bytes": side["bytes"],
        "retransmissions": side.get("retransmissions", 0),
    }


def _telemetry_deltas(snap_a: Optional[Dict[str, Any]],
                      snap_b: Optional[Dict[str, Any]],
                      ) -> Optional[List[Dict[str, Any]]]:
    if snap_a is None or snap_b is None:
        return None
    series_a = snap_a.get("series", {})
    series_b = snap_b.get("series", {})
    out: List[Dict[str, Any]] = []

    def _stats(entry: Optional[Dict[str, Any]]) -> Tuple[float, int, float]:
        if entry is None:
            return 0.0, 0, 0.0
        rollup = entry["rollup"]
        mean = rollup["total"] / rollup["count"] if rollup["count"] else 0.0
        return mean, rollup["count"], rollup["max"] or 0.0

    for name in sorted(set(series_a) | set(series_b)):
        entry_a = series_a.get(name)
        entry_b = series_b.get(name)
        mean_a, count_a, max_a = _stats(entry_a)
        mean_b, count_b, max_b = _stats(entry_b)
        out.append({
            "series": name,
            "tag": (entry_a or entry_b)["tag"],
            "a_mean": mean_a, "b_mean": mean_b,
            "delta_mean": mean_b - mean_a,
            "a_count": count_a, "b_count": count_b,
            "delta_count": count_b - count_a,
            "a_max": max_a, "b_max": max_b,
            "delta_max": max_b - max_a,
        })
    return out


# -- renderers ----------------------------------------------------------------


def _table(headers: List[str], rows: List[List[str]]) -> List[str]:
    widths = [max(len(headers[i]), max([len(r[i]) for r in rows] or [0]))
              for i in range(len(headers))]
    lines = ["  ".join(h.ljust(w) for h, w in zip(headers, widths)).rstrip()]
    lines.append("-" * len(lines[0]))
    for row in rows:
        lines.append("  ".join(c.ljust(w)
                               for c, w in zip(row, widths)).rstrip())
    return lines


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return "%.6f" % value
    return str(value)


def _report_tables(report: Dict[str, Any],
                   ) -> List[Tuple[str, List[str], List[List[str]]]]:
    """The report's sections as ``(title, headers, rows)`` triples.

    One source of truth for the text and HTML renderers, so the two
    formats always agree on content.
    """
    sections: List[Tuple[str, List[str], List[List[str]]]] = []
    a = report["a"]
    b = report["b"]
    delta = report["delta"]
    sections.append((
        "totals",
        ["metric", a["label"], b["label"], "delta"],
        [
            ["completion_time_s", _fmt(a["completion_time_s"]),
             _fmt(b["completion_time_s"]),
             "%+.6f" % delta["completion_time_s"]],
            ["messages", str(a["messages"]), str(b["messages"]),
             "%+d" % delta["messages"]],
            ["bytes", str(a["bytes"]), str(b["bytes"]),
             "%+d" % delta["bytes"]],
            ["retransmissions", str(a["retransmissions"]),
             str(b["retransmissions"]), "%+d" % delta["retransmissions"]],
        ],
    ))
    sections.append((
        "layer attribution (exclusive ms; deltas sum exactly to the "
        "completion delta)",
        ["layer", "a (ms)", "b (ms)", "delta (ms)", "share"],
        [[entry["layer"], "%.3f" % (entry["a_s"] * 1e3),
          "%.3f" % (entry["b_s"] * 1e3), "%+.3f" % (entry["delta_ns"] / 1e6),
          ("-" if entry["share"] is None
           else "%.1f%%" % (100.0 * entry["share"]))]
         for entry in report["layers"]],
    ))
    if report["ops"] is not None:
        rows = []
        for entry in sorted(report["ops"],
                            key=lambda e: (-abs(e["delta"]["requests"]),
                                           e["op"])):
            rows.append([
                entry["op"], entry["family"],
                str(entry["a"]["requests"]), str(entry["b"]["requests"]),
                "%+d" % entry["delta"]["requests"],
                "%+d" % entry["delta"]["retransmits"],
                "%+d" % (entry["delta"]["req_bytes"]
                         + entry["delta"]["rep_bytes"]),
            ])
        meta = report["meta_messages"]
        data = report["data_messages"]
        rows.append(["(meta-data/journal)", "meta", str(meta["a"]),
                     str(meta["b"]), "%+d" % meta["delta"], "+0", ""])
        rows.append(["(data transfer)", "data", str(data["a"]),
                     str(data["b"]), "%+d" % data["delta"], "+0", ""])
        sections.append((
            "message drift per op (requests)",
            ["op", "family", "a req", "b req", "delta req", "delta rexmit",
             "delta bytes"],
            rows,
        ))
    if report["resources"]:
        sections.append((
            "resource queueing deltas",
            ["resource", "util a", "util b", "d util", "d mean queue",
             "d p95 wait (ms)", "d acquisitions"],
            [[entry["resource"],
              "%.3f" % entry["a"]["utilization"],
              "%.3f" % entry["b"]["utilization"],
              "%+.3f" % entry["delta"]["utilization"],
              "%+.3f" % entry["delta"]["mean_queue"],
              "%+.3f" % (entry["delta"]["p95_wait_s"] * 1e3),
              "%+d" % entry["delta"]["acquisitions"]]
             for entry in report["resources"]],
        ))
    if report["telemetry"] is not None:
        sections.append((
            "telemetry series deltas",
            ["series", "tag", "mean a", "mean b", "d mean", "d max",
             "d count"],
            [[entry["series"], entry["tag"], "%.6g" % entry["a_mean"],
              "%.6g" % entry["b_mean"], "%+.6g" % entry["delta_mean"],
              "%+.6g" % entry["delta_max"], "%+d" % entry["delta_count"]]
             for entry in report["telemetry"]],
        ))
    if report["blame"]:
        sections.append((
            "blame (ranked by contribution)",
            ["#", "score", "kind", "name", "verdict"],
            [[str(rank + 1), "%.3f" % entry["score"], entry["kind"],
              entry["name"], entry["verdict"]]
             for rank, entry in enumerate(report["blame"])],
        ))
    return sections


def format_explain(report: Dict[str, Any]) -> str:
    """Render a report as aligned, pure-ASCII text (the CLI default).

    Deterministic: equal reports yield equal bytes, the property the
    explain-smoke CI job compares.
    """
    lines = ["== repro explain: %s  a=%s  b=%s =="
             % (report["workload"], report["a"]["label"],
                report["b"]["label"])]
    for title, headers, rows in _report_tables(report):
        lines.append("")
        lines.append("-- " + title)
        lines.extend(_table(headers, rows))
    lines.append("")
    lines.append("-- verdict")
    for verdict in report["verdicts"]:
        lines.append(" * " + verdict)
    return "\n".join(lines) + "\n"


def format_explain_json(report: Dict[str, Any]) -> str:
    """The report as stable JSON (sorted keys, trailing newline)."""
    return json.dumps(report, indent=2, sort_keys=True) + "\n"


_HTML_HEAD = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>%(title)s</title>
<style>
body { font-family: ui-monospace, Menlo, Consolas, monospace;
       background: #101418; color: #d8dee4; margin: 2em; }
h1 { font-size: 1.2em; border-bottom: 1px solid #2c333b; }
h2 { font-size: 1.0em; color: #9fb3c8; margin-top: 1.6em; }
table { border-collapse: collapse; }
th, td { padding: 0.15em 0.9em 0.15em 0; font-size: 0.8em;
         text-align: left; vertical-align: top; }
th { color: #7d8b99; border-bottom: 1px solid #2c333b; }
.verdicts li { color: #e8b339; font-size: 0.85em; }
.meta { color: #7d8b99; font-size: 0.75em; }
</style>
</head>
<body>
<h1>%(title)s</h1>
<p class="meta">differential diagnosis report &mdash; self-contained
export (no external assets)</p>
"""

_HTML_FOOT = "</body>\n</html>\n"


def render_explain_html(report: Dict[str, Any],
                        title: Optional[str] = None) -> str:
    """Render a report as one self-contained HTML document.

    Same sections as :func:`format_explain`; output bytes are a pure
    function of the report (the CI artifact contract).
    """
    if title is None:
        title = ("repro explain: %s (%s vs %s)"
                 % (report["workload"], report["a"]["label"],
                    report["b"]["label"]))
    parts = [_HTML_HEAD % {"title": _escape(title)}]
    for section_title, headers, rows in _report_tables(report):
        parts.append("<h2>%s</h2>\n" % _escape(section_title))
        parts.append("<table>\n<tr>%s</tr>\n"
                     % "".join("<th>%s</th>" % _escape(h) for h in headers))
        for row in rows:
            parts.append("<tr>%s</tr>\n"
                         % "".join("<td>%s</td>" % _escape(c) for c in row))
        parts.append("</table>\n")
    parts.append("<h2>verdict</h2>\n<ul class=\"verdicts\">\n")
    for verdict in report["verdicts"]:
        parts.append("<li>%s</li>\n" % _escape(verdict))
    parts.append("</ul>\n")
    parts.append(_HTML_FOOT)
    return "".join(parts)


def write_explain_html(path: str, report: Dict[str, Any],
                       title: Optional[str] = None) -> None:
    """Write :func:`render_explain_html` output to ``path`` (UTF-8)."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(render_explain_html(report, title=title))


# -- timeline diff (folded in from repro.obs.export) --------------------------


def render_timeline_diff(tracer_a: Any, label_a: str,
                         tracer_b: Any, label_b: str,
                         limit: int = 0) -> str:
    """Interleave two packet traces side by side, ordered by time.

    The two stacks replay the same workload on independent simulators, so
    the traces share a t=0; each line lands in the left or right column by
    origin.  ``limit`` truncates to the first N messages per side
    (0 = everything).  This is the message-level companion of
    :func:`explain_runs` (and the former home of
    ``repro.obs.export.render_timeline_diff``, which now delegates here).
    """
    def rows(tracer: Any, side: int):
        msgs = tracer.messages[:limit] if limit else tracer.messages
        for msg in msgs:
            arrow = "->" if msg.direction == "c2s" else "<-"
            text = "%s %s %s %dB" % (
                arrow, msg.op, "req" if msg.kind == "request" else "rep",
                msg.size)
            if msg.retransmission:
                text += " REXMIT"
            yield (msg.t, side, text)

    merged = sorted(
        list(rows(tracer_a, 0)) + list(rows(tracer_b, 1)),
        key=lambda row: (row[0], row[1]))
    width = max(
        [len(label_a) + 2] +
        [len(text) for _t, side, text in merged if side == 0]) + 2
    lines = ["%12s  %s%s" % ("t (ms)", label_a.ljust(width), label_b),
             "-" * (14 + width + len(label_b))]
    for t, side, text in merged:
        left = text if side == 0 else ""
        right = text if side == 1 else ""
        lines.append("%12.3f  %s%s" % (t * 1e3, left.ljust(width), right))
    return "\n".join(lines)
