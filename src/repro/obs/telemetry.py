"""Streaming telemetry: bounded-memory rollups, watchers, heartbeats.

The span-level tracing of :mod:`repro.obs.tracer` records every message
and every span — perfect for a single workload, far too heavy for the
scale-out runs the ROADMAP targets (thousands of clients, hours of
simulated time).  This module is the light-weight alternative the related
iSCSI/RAID measurement papers actually use: continuous utilization and
queue-depth *timelines*, not per-message traces.

Three pieces:

* :class:`SeriesRollup` — one metric's time series, held in a fixed-size
  ring of windows.  Each window keeps streaming ``count/sum/min/max``;
  the whole series additionally feeds a mergeable fixed-bucket
  :class:`~repro.sim.stats.LatencyHistogram` plus exact run-wide totals.
  Memory is bounded by construction: when the clock outruns the ring the
  oldest windows are dropped (and counted), never grown.
* :class:`Telemetry` — the per-stack collector.  Registered probes
  (links, disks, RAID, caches, RPC peers, iSCSI sessions, per-tier
  resource queues) are sampled on a fixed simulated-time interval by one
  background process; push-style hooks (:meth:`Telemetry.count`,
  :meth:`Telemetry.observe`) let hot paths contribute counters.  The
  disabled form of the layer is simply ``telem = None`` — every hook
  site guards with ``if telem is not None:`` (the pattern simlint rule
  O302 enforces), so a telemetry-off run executes the exact same event
  sequence as before the layer existed.  Invariant *watchers* scan the
  stream as it accumulates and report findings the way the simsan
  sanitizers do (stable codes, human messages).
* :class:`Heartbeat` — wall-clock-paced progress lines on stderr so long
  ``repro all --jobs`` runs are no longer silent: simulated-time versus
  wall-time rate, events per second, calendar depth, and the experiment
  runner's cell/cache progress.  Status only, stderr only — stdout and
  ``BENCH_*.json`` stay byte-identical.

Rollups are *mergeable*: :func:`merge_snapshots` folds the JSON
snapshots of many workers into one, associatively and keyed by series
id, so :class:`~repro.core.runner.ExperimentRunner` can aggregate
telemetry across a process-pool fan-out deterministically — the merged
result is byte-identical for ``--jobs 1`` and ``--jobs 8``.

Determinism note: everything keyed on the *simulated* clock is exact and
reproducible.  Only :class:`Heartbeat` reads the host clock, and its
output goes exclusively to stderr.
"""

from __future__ import annotations

import sys
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from ..sim.stats import LatencyHistogram

__all__ = [
    "SeriesRollup",
    "Telemetry",
    "TelemetryFinding",
    "Heartbeat",
    "merge_rollups",
    "merge_snapshots",
    "SNAPSHOT_VERSION",
]

SNAPSHOT_VERSION = 1

# Watcher tuning: how many consecutive windows of evidence a finding
# needs.  Small enough to fire within the quick workloads' time scale,
# large enough that one busy burst is not an alarm.
_WATCH_WINDOWS = 8
_QUEUE_ALARM_DEPTH = 16.0
_UTIL_PEGGED = 0.999


class TelemetryFinding:
    """One watcher finding: a stable code, the series, a human message.

    Shaped like :class:`repro.check.simsan.Finding` so CLI consumers can
    render both families uniformly.  Codes:

    * **T501 unbounded-queue-growth** — a queue-depth series rose
      monotonically across a full watch span and ended above the alarm
      depth: the classic signature of an open-loop overload.
    * **T502 utilization-pegged** — a utilization series sat at 1.0 for
      a full watch span: the tier is the bottleneck (or a busy-time
      accounting bug).
    * **T503 zero-progress-stall** — progress counters went silent for a
      full watch span while queues still held work.
    """

    __slots__ = ("code", "series", "message")

    def __init__(self, code: str, series: str, message: str):
        self.code = code
        self.series = series
        self.message = message

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "TelemetryFinding(%s@%s: %s)" % (
            self.code, self.series, self.message)

    def __eq__(self, other: Any) -> bool:
        return (isinstance(other, TelemetryFinding)
                and (self.code, self.series, self.message)
                == (other.code, other.series, other.message))


class SeriesRollup:
    """Fixed-memory rollup of one metric: a ring of time windows.

    A window covers ``width`` simulated seconds; at most ``capacity``
    windows are retained.  Recording past the ring's end drops the
    oldest windows (tallied in :attr:`dropped_windows`); run-wide
    ``count/total/min/max`` and the fixed-bucket histogram are streaming
    accumulators and never lose data.  All state is plain arithmetic on
    JSON-able scalars, so two rollups of the same geometry merge exactly
    (see :func:`merge_rollups`).
    """

    __slots__ = ("width", "capacity", "start", "counts", "sums", "mins",
                 "maxs", "hist", "count", "total", "min", "max",
                 "dropped_windows")

    def __init__(self, width: float, capacity: int):
        if width <= 0:
            raise ValueError("window width must be positive")
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.width = width
        self.capacity = capacity
        self.start: Optional[int] = None   # absolute index of oldest window
        self.counts: List[int] = []
        self.sums: List[float] = []
        self.mins: List[Optional[float]] = []
        self.maxs: List[Optional[float]] = []
        self.hist = LatencyHistogram()
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.dropped_windows = 0

    def record(self, t: float, value: float) -> None:
        """Add one observation at simulated time ``t``."""
        index = int(t / self.width)
        if self.start is None:
            self.start = index
        if index < self.start:
            # A merge-era straggler (or a clamped clock): fold it into
            # the oldest retained window rather than growing backwards.
            index = self.start
        offset = index - self.start
        while offset >= self.capacity:
            # Ring full: drop the oldest window (bounded memory).
            self.counts.pop(0)
            self.sums.pop(0)
            self.mins.pop(0)
            self.maxs.pop(0)
            self.start += 1
            self.dropped_windows += 1
            offset -= 1
        while len(self.counts) <= offset:
            self.counts.append(0)
            self.sums.append(0.0)
            self.mins.append(None)
            self.maxs.append(None)
        self.counts[offset] += 1
        self.sums[offset] += value
        if self.mins[offset] is None or value < self.mins[offset]:
            self.mins[offset] = value
        if self.maxs[offset] is None or value > self.maxs[offset]:
            self.maxs[offset] = value
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        self.hist.record(value)

    @property
    def last_index(self) -> Optional[int]:
        """Absolute index of the newest retained window (None if empty)."""
        if self.start is None:
            return None
        return self.start + len(self.counts) - 1

    @property
    def mean(self) -> float:
        """Run-wide arithmetic mean (0.0 when empty)."""
        if not self.count:
            return 0.0
        return self.total / self.count

    def window_means(self) -> List[Optional[float]]:
        """Per-window means, oldest first (None for empty windows)."""
        return [self.sums[i] / self.counts[i] if self.counts[i] else None
                for i in range(len(self.counts))]

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready snapshot (the mergeable wire form)."""
        return {
            "width": self.width,
            "capacity": self.capacity,
            "start": self.start,
            "counts": list(self.counts),
            "sums": [round(s, 9) for s in self.sums],
            "mins": [None if m is None else round(m, 9) for m in self.mins],
            "maxs": [None if m is None else round(m, 9) for m in self.maxs],
            "hist": self.hist.as_dict(),
            "count": self.count,
            "total": round(self.total, 9),
            "min": None if self.min is None else round(self.min, 9),
            "max": None if self.max is None else round(self.max, 9),
            "dropped_windows": self.dropped_windows,
        }


def _merge_optional(a: Optional[float], b: Optional[float],
                    pick: Callable[[float, float], float]) -> Optional[float]:
    if a is None:
        return b
    if b is None:
        return a
    return pick(a, b)


def merge_rollups(a: Dict[str, Any], b: Dict[str, Any]) -> Dict[str, Any]:
    """Merge two :meth:`SeriesRollup.as_dict` snapshots (associative).

    Windows align on their *absolute* index — every simulation starts at
    t=0, so window k of worker A and window k of worker B cover the same
    simulated phase.  The merged ring keeps the newest ``capacity``
    windows of the union; clipped windows count as dropped.  Bucketed
    histograms and run-wide totals add exactly, so the merge is
    associative and independent of worker completion order.
    """
    if a["width"] != b["width"]:
        raise ValueError("cannot merge rollups of different window widths "
                         "(%r vs %r)" % (a["width"], b["width"]))
    capacity = max(a["capacity"], b["capacity"])
    out: Dict[str, Any] = {
        "width": a["width"],
        "capacity": capacity,
        "count": a["count"] + b["count"],
        "total": a["total"] + b["total"],
        "min": _merge_optional(a["min"], b["min"], min),
        "max": _merge_optional(a["max"], b["max"], max),
        "dropped_windows": a["dropped_windows"] + b["dropped_windows"],
    }
    hist = LatencyHistogram.from_dict(a["hist"])
    hist.merge(LatencyHistogram.from_dict(b["hist"]))
    out["hist"] = hist.as_dict()

    if a["start"] is None and b["start"] is None:
        out.update(start=None, counts=[], sums=[], mins=[], maxs=[])
        return out
    parts = [p for p in (a, b) if p["start"] is not None]
    start = min(p["start"] for p in parts)
    end = max(p["start"] + len(p["counts"]) for p in parts)
    if end - start > capacity:
        out["dropped_windows"] += (end - start) - capacity
        start = end - capacity
    span = end - start
    counts = [0] * span
    sums = [0.0] * span
    mins: List[Optional[float]] = [None] * span
    maxs: List[Optional[float]] = [None] * span
    for part in parts:
        for i, count in enumerate(part["counts"]):
            offset = part["start"] + i - start
            if offset < 0:
                continue  # clipped by the merged ring
            counts[offset] += count
            sums[offset] += part["sums"][i]
            mins[offset] = _merge_optional(mins[offset], part["mins"][i], min)
            maxs[offset] = _merge_optional(maxs[offset], part["maxs"][i], max)
    out.update(start=start, counts=counts, sums=sums, mins=mins, maxs=maxs)
    return out


def merge_snapshots(snapshots: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Fold many :meth:`Telemetry.snapshot` documents into one.

    Keyed by series id, associative, and order-stable: series merge in
    sorted-id order and findings dedupe into a sorted list, so the
    output is byte-deterministic however the inputs were produced
    (serial run, process pool, different ``--jobs``).
    """
    if not snapshots:
        raise ValueError("nothing to merge")
    merged_series: Dict[str, Dict[str, Any]] = {}
    findings: Set[Tuple[str, str, str]] = set()
    samples = 0
    for snap in snapshots:
        if snap.get("version") != SNAPSHOT_VERSION:
            raise ValueError("telemetry snapshot version %r != %d"
                             % (snap.get("version"), SNAPSHOT_VERSION))
        samples += snap.get("samples", 0)
        for finding in snap.get("findings", []):
            findings.add((finding[0], finding[1], finding[2]))
        for name in sorted(snap.get("series", {})):
            entry = snap["series"][name]
            known = merged_series.get(name)
            if known is None:
                merged_series[name] = {
                    "tag": entry["tag"],
                    "rollup": _copy_rollup(entry["rollup"]),
                }
            else:
                known["rollup"] = merge_rollups(known["rollup"],
                                                entry["rollup"])
    return {
        "version": SNAPSHOT_VERSION,
        "samples": samples,
        "series": {name: merged_series[name]
                   for name in sorted(merged_series)},
        "findings": sorted(list(f) for f in findings),
    }


def _copy_rollup(rollup: Dict[str, Any]) -> Dict[str, Any]:
    """A structural copy so merging never aliases an input snapshot."""
    out = dict(rollup)
    out["counts"] = list(rollup["counts"])
    out["sums"] = list(rollup["sums"])
    out["mins"] = list(rollup["mins"])
    out["maxs"] = list(rollup["maxs"])
    out["hist"] = dict(rollup["hist"])
    out["hist"]["buckets"] = dict(rollup["hist"]["buckets"])
    return out


class Heartbeat:
    """Wall-clock-paced status lines on stderr for long runs.

    The one deliberately non-deterministic corner of the telemetry
    layer: it reads the *host* clock (what "is this run stuck?" means)
    and writes only to ``stream`` (stderr by default), so the
    reproducible stdout/JSON outputs are untouched.  Rate-limited to one
    line per ``min_interval`` wall seconds; :meth:`final` always prints.
    """

    __slots__ = ("label", "stream", "min_interval", "beats",
                 "_t0", "_last", "_last_sim", "_last_events")

    def __init__(self, label: str, stream: Any = None,
                 min_interval: float = 2.0):
        import time

        self.label = label
        self.stream = stream if stream is not None else sys.stderr
        self.min_interval = min_interval
        self.beats = 0
        # Host-clock read: heartbeats measure wall progress by design,
        # and never feed simulated state.
        self._t0 = time.monotonic()  # simlint: disable=D101 (wall progress)
        self._last = self._t0
        self._last_sim = 0.0
        self._last_events = 0

    def _wall(self) -> float:
        import time

        # Host-clock read: see __init__ — status output only.
        return time.monotonic()  # simlint: disable=D101 (wall progress)

    def maybe_beat(self, sim_now: float, events: int,
                   calendar: int) -> None:
        """Emit a simulation-progress line if the rate limit allows.

        Reports the simulated clock, the sim-time/wall-time rate since
        the previous beat, events processed per wall second, and the
        current calendar depth — vmstat for the simulator itself.
        """
        wall = self._wall()
        if wall - self._last < self.min_interval:
            return
        dt = wall - self._last
        sim_rate = (sim_now - self._last_sim) / dt if dt > 0 else 0.0
        ev_rate = (events - self._last_events) / dt if dt > 0 else 0.0
        self._last = wall
        self._last_sim = sim_now
        self._last_events = events
        self.beats += 1
        print("[hb %s] sim=%.3fs wall=%.1fs sim/wall=%.3gx ev/s=%.3g "
              "calendar=%d"
              % (self.label, sim_now, wall - self._t0, sim_rate, ev_rate,
                 calendar),
              file=self.stream)

    def progress(self, done: int, total: int, cached: int = 0,
                 force: bool = False) -> None:
        """Emit an experiment-runner progress line (cells and cache)."""
        wall = self._wall()
        if not force and wall - self._last < self.min_interval:
            return
        self._last = wall
        self.beats += 1
        elapsed = wall - self._t0
        rate = done / elapsed if elapsed > 0 else 0.0
        print("[hb %s] cells %d/%d (%d cached) wall=%.1fs rate=%.2f/s"
              % (self.label, done, total, cached, elapsed, rate),
              file=self.stream)

    def final(self, message: str) -> None:
        """Always-printed closing line (total wall time appended)."""
        self.beats += 1
        print("[hb %s] %s wall=%.1fs"
              % (self.label, message, self._wall() - self._t0),
              file=self.stream)


class Telemetry:
    """The per-stack streaming collector (the enabled form of the layer).

    There is no null object: the disabled layer is the literal ``None``,
    and every hook site guards with ``if telem is not None:`` — one
    attribute load and branch, the same contract the fault injector and
    sanitizers follow (simlint O302 checks the shape).  ``enabled`` is
    provided for symmetry with :class:`~repro.obs.tracer.Tracer`.

    ``interval`` is the sampling period and ``window`` the rollup-window
    width, both in simulated seconds; ``capacity`` bounds the ring.  The
    sampler is one background process; probes registered *after* it
    starts are picked up on the next tick (rate baselines are seeded at
    registration — the tracer's historical silent-drop bug is designed
    out here).
    """

    enabled = True

    def __init__(self, sim: Any, interval: float = 0.002,
                 window: float = 0.032, capacity: int = 64,
                 heartbeat: Optional[Heartbeat] = None):
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.sim = sim
        self.interval = interval
        self.window = window
        self.capacity = capacity
        self.heartbeat = heartbeat
        # Optional FlightRecorder (repro.obs.explain): every watcher
        # finding dumps its context window, so T-codes ship evidence.
        self.recorder = None
        self.series: Dict[str, SeriesRollup] = {}
        self.tags: Dict[str, str] = {}
        self.samples = 0
        self.findings: List[TelemetryFinding] = []
        self._probes: List[Tuple[str, Callable[[], float], str, float]] = []
        self._last: Dict[str, float] = {}
        self._sampler = None

    # -- registration ---------------------------------------------------------

    def _rollup_for(self, name: str, tag: str) -> SeriesRollup:
        rollup = self.series.get(name)
        if rollup is None:
            rollup = self.series[name] = SeriesRollup(self.window,
                                                      self.capacity)
            self.tags[name] = tag
        return rollup

    def add_series(self, name: str, fn: Callable[[], float],
                   kind: str = "gauge", tag: str = "gauge",
                   scale: float = 1.0) -> None:
        """Register a sampled series.

        ``kind`` follows the tracer's probe vocabulary: ``"gauge"``
        records ``fn()`` as-is; ``"cumulative"`` and ``"rate"`` record
        the per-second rate of change of a growing total (clamped at 0).
        ``tag`` labels the series for the watchers and the dashboard:
        ``"util"`` (utilization in [0, 1]), ``"queue"`` (depth),
        ``"rate"``, ``"progress"``, or plain ``"gauge"``.

        Registration while the sampler is live is fully supported: the
        rate baseline is seeded immediately, so the series appears from
        the next tick onward.
        """
        if kind not in ("gauge", "cumulative", "rate"):
            raise ValueError("unknown series kind %r" % (kind,))
        if name in self.series:
            raise ValueError("series %r already registered" % (name,))
        self._rollup_for(name, tag)
        self._probes.append((name, fn, kind, scale))
        if kind != "gauge":
            self._last[name] = fn()

    # -- push hooks (guard call sites with `if telem is not None:`) ----------

    def count(self, name: str, value: float = 1.0) -> None:
        """Accumulate a push counter at the current simulated time."""
        rollup = self.series.get(name)
        if rollup is None:
            rollup = self._rollup_for(name, "progress")
        rollup.record(self.sim.now, value)

    def observe(self, name: str, value: float) -> None:
        """Record a push gauge observation at the current simulated time."""
        rollup = self.series.get(name)
        if rollup is None:
            rollup = self._rollup_for(name, "gauge")
        rollup.record(self.sim.now, value)

    # -- sampling -------------------------------------------------------------

    def start(self) -> None:
        """Spawn the background sampler (idempotent)."""
        if self._sampler is None:
            self._sampler = self.sim.spawn(self._sample_loop(),
                                           name="telemetry.sampler")

    def _sample_loop(self):
        sim = self.sim
        last = self._last
        last_t = sim.now
        while True:
            yield sim.timeout(self.interval)
            now = sim.now
            dt = now - last_t
            last_t = now
            for name, fn, kind, scale in self._probes:
                value = fn()
                if kind != "gauge":
                    previous = last.get(name, value)
                    last[name] = value
                    if dt <= 0:
                        continue
                    value = max(0.0, value - previous) / dt
                self.series[name].record(now, value * scale)
            self.samples += 1
            if self.samples % _WATCH_WINDOWS == 0:
                self._run_watchers(now)
            hb = self.heartbeat
            if hb is not None:
                hb.maybe_beat(sim_now=now, events=sim._sequence,
                              calendar=len(sim._calendar))

    # -- watchers -------------------------------------------------------------

    def _fired(self, code: str, series: str) -> bool:
        return any(f.code == code and f.series == series
                   for f in self.findings)

    def _report(self, finding: TelemetryFinding) -> None:
        """Record one watcher finding; dump flight-recorder context."""
        self.findings.append(finding)
        recorder = self.recorder
        if recorder is not None:
            recorder.dump(finding.code, finding.series, finding.message)

    def _run_watchers(self, now: float) -> None:
        """Scan the stream for invariant violations (one finding each)."""
        current_index = int(now / self.window)
        progress_alive = False
        progress_seen = False
        queued_work = False
        for name in sorted(self.series):
            rollup = self.series[name]
            tag = self.tags.get(name, "gauge")
            if tag == "progress":
                progress_seen = True
                last = rollup.last_index
                if last is not None and current_index - last < _WATCH_WINDOWS:
                    progress_alive = True
                continue
            if len(rollup.counts) < _WATCH_WINDOWS:
                continue
            recent_max = rollup.maxs[-_WATCH_WINDOWS:]
            recent_min = rollup.mins[-_WATCH_WINDOWS:]
            if any(m is None for m in recent_max):
                continue
            if tag == "queue":
                if rollup.maxs[-1] and rollup.maxs[-1] > 0:
                    queued_work = True
                grew = all(recent_max[i] < recent_max[i + 1]
                           for i in range(len(recent_max) - 1))
                if (grew and recent_max[-1] >= _QUEUE_ALARM_DEPTH
                        and not self._fired("T501", name)):
                    self._report(TelemetryFinding(
                        "T501", name,
                        "queue depth grew monotonically %.0f -> %.0f over "
                        "the last %d windows (unbounded growth?)"
                        % (recent_max[0], recent_max[-1], _WATCH_WINDOWS)))
            elif tag == "util":
                pegged = all(m is not None and m >= _UTIL_PEGGED
                             for m in recent_min)
                if pegged and not self._fired("T502", name):
                    self._report(TelemetryFinding(
                        "T502", name,
                        "utilization pegged at 1.0 for %d consecutive "
                        "windows (saturated tier)" % _WATCH_WINDOWS))
        if (progress_seen and not progress_alive and queued_work
                and not self._fired("T503", "progress")):
            self._report(TelemetryFinding(
                "T503", "progress",
                "no progress counters advanced for %d windows while "
                "queues still hold work (stall?)" % _WATCH_WINDOWS))

    # -- export ---------------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """The JSON-able, mergeable document for this run's telemetry."""
        return {
            "version": SNAPSHOT_VERSION,
            "samples": self.samples,
            "series": {
                name: {"tag": self.tags.get(name, "gauge"),
                       "rollup": self.series[name].as_dict()}
                for name in sorted(self.series)
            },
            "findings": sorted(
                [f.code, f.series, f.message] for f in self.findings),
        }
