"""The tracer: simulated Ethereal + nfsstat + vmstat in one object.

The paper's methodology is built on three observation tools — Ethereal
packet captures on the wire, ``nfsstat`` per-op counters at the protocol
layer, and ``vmstat`` utilization sampling on the hosts.  A
:class:`Tracer` plays all three roles for a simulated run:

* **packet trace** — every protocol message crossing the transport is
  recorded with direction, op, kind, sizes, and retransmission flag
  (:class:`MessageEvent`);
* **causal spans** — each layer brackets its work in a :class:`Span`
  (syscall -> VFS -> NFS client/RPC or SCSI -> server -> RAID -> disk).
  Spans carry parent ids, so one syscall's fan-out across processes and
  hosts is reconstructable as a tree;
* **point events** — cache hits/misses, journal commits, and similar
  instantaneous facts (:class:`PointEvent`);
* **latency histograms** — every finished span feeds a fixed-bucket
  :class:`LatencyHistogram` keyed by span name (p50/p95/p99 per op);
* **utilization timelines** — registered probes (host CPUs, link bytes,
  disk queue depth) are sampled on a fixed interval into
  :class:`CounterSample` rows — the vmstat column of Tables 9/10 as a
  time series.

The default tracer everywhere is :data:`NULL_TRACER`, a singleton whose
``enabled`` attribute is ``False`` and whose methods do nothing.  Hot
paths guard instrumentation with ``if tracer.enabled:`` so an untraced
run executes the exact same event sequence as before the tracer existed.

Causality rules
---------------
Span parentage is resolved per simulator *process*: each process keeps a
stack of open spans, and a new span's parent is the innermost open span
of the process that begins it.  Two explicit escape hatches cross process
boundaries:

* a spawned process may carry a ``trace_parent`` attribute (set by the
  spawner, e.g. the RAID fan-out) that seeds its stack's parent;
* a :class:`~repro.net.message.Message` carries ``span_id``, so the
  server-side ``serve`` span is parented to the client-side call span —
  causality across the wire, as Ethereal's request/reply matching.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, Generator, List, Optional, Tuple

from ..sim import Simulator
from ..sim.stats import LatencyHistogram

__all__ = [
    "Span",
    "PointEvent",
    "MessageEvent",
    "CounterSample",
    "LatencyHistogram",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
]


class Span:
    """One timed, causally-linked interval of work in some layer."""

    __slots__ = ("id", "name", "cat", "track", "parent", "tid", "process",
                 "start", "end", "args", "proc_ref")

    def __init__(self, span_id: int, name: str, cat: str, track: str,
                 parent: Optional[int], tid: int, process: str,
                 start: float, args: Dict[str, Any]):
        self.id = span_id
        self.proc_ref: Any = None   # owning simulator process (internal)
        self.name = name
        self.cat = cat
        self.track = track          # "client" | "server" | "wire"
        self.parent = parent        # id of the enclosing span, or None
        self.tid = tid              # stable per-process lane for exporters
        self.process = process      # simulator process name
        self.start = start
        self.end: Optional[float] = None
        self.args = args

    @property
    def duration(self) -> float:
        """Elapsed simulated seconds (0.0 while still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<Span #%d %s [%s] %.6f..%s>" % (
            self.id, self.name, self.track, self.start,
            "open" if self.end is None else "%.6f" % self.end)


class PointEvent:
    """An instantaneous fact (cache hit, journal commit, ...)."""

    __slots__ = ("t", "name", "cat", "track", "args")

    def __init__(self, t: float, name: str, cat: str, track: str,
                 args: Dict[str, Any]):
        self.t = t
        self.name = name
        self.cat = cat
        self.track = track
        self.args = args


class MessageEvent:
    """One protocol message observed on the wire (an Ethereal row)."""

    __slots__ = ("t", "direction", "op", "kind", "header_bytes",
                 "payload_bytes", "xid", "retransmission", "span_id")

    def __init__(self, t: float, direction: str, op: str, kind: str,
                 header_bytes: int, payload_bytes: int, xid: int,
                 retransmission: bool, span_id: int):
        self.t = t
        self.direction = direction  # "c2s" | "s2c"
        self.op = op
        self.kind = kind            # "request" | "reply"
        self.header_bytes = header_bytes
        self.payload_bytes = payload_bytes
        self.xid = xid
        self.retransmission = retransmission
        self.span_id = span_id

    @property
    def size(self) -> int:
        """Total on-the-wire bytes of this message."""
        return self.header_bytes + self.payload_bytes


class CounterSample:
    """One sampled utilization/queue value (a vmstat row)."""

    __slots__ = ("t", "name", "track", "value")

    def __init__(self, t: float, name: str, track: str, value: float):
        self.t = t
        self.name = name
        self.track = track
        self.value = value


class NullTracer:
    """The zero-overhead default: records nothing, always disabled.

    Components hold a tracer unconditionally and guard instrumentation
    with ``if tracer.enabled:``; with this singleton in place no code path
    differs from an uninstrumented build.  ``__slots__`` is empty so the
    singleton carries no per-instance dict and ``enabled`` resolves as a
    plain class attribute — the no-op path is a single attribute load and
    branch at every instrumentation site.
    """

    __slots__ = ()

    enabled = False

    def begin_span(self, name: str, cat: str = "span", track: str = "client",
                   parent: Optional[int] = None, **args: Any) -> None:
        """No-op; returns ``None`` so ``end_span`` guards stay cheap."""
        return None

    def end_span(self, span: Optional[Span], **args: Any) -> None:
        """No-op."""

    def instant(self, name: str, cat: str = "event", track: str = "client",
                **args: Any) -> None:
        """No-op."""

    def message(self, direction: str, msg: Any) -> None:
        """No-op."""

    def current_span_id(self) -> Optional[int]:
        """No span context when tracing is off."""
        return None

    def wrap(self, name: str, gen: Generator, cat: str = "span",
             track: str = "client", **args: Any) -> Generator:
        """Run ``gen`` unchanged (no span recorded)."""
        result = yield from gen
        return result

    def add_probe(self, name: str, fn: Callable[[], float],
                  kind: str = "gauge", track: str = "client",
                  scale: float = 1.0) -> None:
        """No-op."""

    def start_sampling(self, interval: float = 0.01) -> None:
        """No-op."""


NULL_TRACER = NullTracer()


class Tracer(NullTracer):
    """The recording tracer (see module docstring for the data model)."""

    enabled = True

    def __init__(self, sim: Simulator):
        self.sim = sim
        self.spans: List[Span] = []          # finished spans, end order
        self.events: List[PointEvent] = []
        self.messages: List[MessageEvent] = []
        self.samples: List[CounterSample] = []
        self.histograms: Dict[str, LatencyHistogram] = {}
        self._ids = itertools.count(1)
        self._stacks: Dict[Any, List[Span]] = {}    # process -> open spans
        self._tids: Dict[Any, int] = {}             # process -> lane id
        self.tid_names: Dict[int, str] = {0: "main"}
        self._probes: List[Tuple[str, Callable[[], float], str, str, float]] = []
        self._sampler = None
        # Rate baselines live on the instance (not the sample loop) so a
        # probe registered after sampling starts joins the next tick with
        # a correct delta instead of being dropped or mis-read.
        self._last: Dict[str, float] = {}
        self._interval: Optional[float] = None

    # -- spans ---------------------------------------------------------------

    def begin_span(self, name: str, cat: str = "span", track: str = "client",
                   parent: Optional[int] = None, **args: Any) -> Span:
        """Open a span; parent defaults to the current process's innermost
        open span (or its ``trace_parent`` attribute when none is open)."""
        proc = self.sim._active_process
        stack = self._stacks.get(proc)
        if parent is None:
            if stack:
                parent = stack[-1].id
            elif proc is not None:
                parent = getattr(proc, "trace_parent", None)
        span = Span(
            next(self._ids), name, cat, track, parent,
            self._tid_for(proc), proc.name if proc is not None else "main",
            self.sim.now, args,
        )
        span.proc_ref = proc
        if stack is None:
            stack = self._stacks[proc] = []
        stack.append(span)
        return span

    def end_span(self, span: Optional[Span], **args: Any) -> None:
        """Close ``span``, record it, and feed its latency histogram."""
        if span is None or span.end is not None:
            return
        span.end = self.sim.now
        if args:
            span.args.update(args)
        stack = self._stacks.get(span.proc_ref)
        if stack is not None:
            # Spans close LIFO in the overwhelmingly common case.
            if stack and stack[-1] is span:
                stack.pop()
            elif span in stack:
                stack.remove(span)
            if not stack:
                self._stacks.pop(span.proc_ref, None)
        self.spans.append(span)
        hist = self.histograms.get(span.name)
        if hist is None:
            hist = self.histograms[span.name] = LatencyHistogram()
        hist.record(span.end - span.start)

    def current_span_id(self) -> Optional[int]:
        """Id of the active process's innermost open span (or ``None``).

        Used by layers that spawn concurrent sub-processes (RAID fan-out,
        write-back) to seed the children's ``trace_parent``.
        """
        proc = self.sim._active_process
        stack = self._stacks.get(proc)
        if stack:
            return stack[-1].id
        if proc is not None:
            return getattr(proc, "trace_parent", None)
        return None

    def wrap(self, name: str, gen: Generator, cat: str = "span",
             track: str = "client", **args: Any) -> Generator:
        """Coroutine: drive ``gen`` to completion under a span."""
        span = self.begin_span(name, cat=cat, track=track, **args)
        try:
            result = yield from gen
        finally:
            self.end_span(span)
        return result

    # -- point events / packet trace ------------------------------------------

    def instant(self, name: str, cat: str = "event", track: str = "client",
                **args: Any) -> None:
        """Record an instantaneous event at the current simulated time."""
        self.events.append(PointEvent(self.sim.now, name, cat, track, args))

    def message(self, direction: str, msg: Any) -> None:
        """Record one protocol message entering the wire (Ethereal row)."""
        self.messages.append(MessageEvent(
            self.sim.now, direction, msg.op, msg.kind,
            msg.header_bytes, msg.payload_bytes, msg.xid,
            msg.is_retransmission, msg.span_id,
        ))

    # -- utilization sampling ---------------------------------------------------

    def add_probe(self, name: str, fn: Callable[[], float],
                  kind: str = "gauge", track: str = "client",
                  scale: float = 1.0) -> None:
        """Register a sampled metric.

        ``kind`` is ``"gauge"`` (record ``fn()`` as-is, e.g. queue depth),
        ``"cumulative"`` (record the per-second rate of change of a
        monotonically growing total, clamped at 0 so a window reset cannot
        produce negative samples — utilization from busy-time counters),
        or ``"rate"`` (like cumulative but without the 0..1 meaning, e.g.
        link bytes/s).  ``scale`` multiplies the recorded value.

        Probes may be registered before *or after* :meth:`start_sampling`:
        a late probe is picked up on the next tick (its rate baseline is
        seeded now), and if ``start_sampling`` ran before any probe
        existed the sampler starts here.
        """
        if kind not in ("gauge", "cumulative", "rate"):
            raise ValueError("unknown probe kind %r" % (kind,))
        self._probes.append((name, fn, kind, track, scale))
        if kind != "gauge":
            self._last[name] = fn()
        if self._sampler is None and self._interval is not None:
            self._sampler = self.sim.spawn(
                self._sample_loop(self._interval), name="tracer.sampler")

    def start_sampling(self, interval: float = 0.01) -> None:
        """Start sampling at ``interval`` (idempotent).

        With no probes registered yet the request is remembered: the
        sampler spawns as soon as the first probe arrives (historically
        such probes were silently never sampled).
        """
        if self._sampler is not None:
            return
        self._interval = interval
        if not self._probes:
            return
        self._sampler = self.sim.spawn(
            self._sample_loop(interval), name="tracer.sampler")

    def _sample_loop(self, interval: float) -> Generator:
        last = self._last
        for name, fn, kind, _track, _scale in self._probes:
            if kind != "gauge" and name not in last:
                last[name] = fn()
        last_t = self.sim.now
        while True:
            yield self.sim.timeout(interval)
            now = self.sim.now
            dt = now - last_t
            last_t = now
            for name, fn, kind, track, scale in self._probes:
                value = fn()
                if kind != "gauge":
                    previous = last.get(name, value)
                    last[name] = value
                    if dt <= 0:
                        continue
                    value = max(0.0, value - previous) / dt
                self.samples.append(
                    CounterSample(now, name, track, value * scale))

    # -- queries ------------------------------------------------------------------

    def span_children(self) -> Dict[Optional[int], List[Span]]:
        """Map parent-id -> children (finished spans only), start-ordered."""
        children: Dict[Optional[int], List[Span]] = {}
        for span in sorted(self.spans, key=lambda s: (s.start, s.id)):
            children.setdefault(span.parent, []).append(span)
        return children

    def subtree(self, root: Span) -> List[Span]:
        """``root`` plus every finished descendant, preorder."""
        children = self.span_children()
        out: List[Span] = []

        def walk(span: Span) -> None:
            out.append(span)
            for child in children.get(span.id, []):
                walk(child)

        walk(root)
        return out

    def find_spans(self, name: str) -> List[Span]:
        """All finished spans with the given name, in end order."""
        return [span for span in self.spans if span.name == name]

    # -- internals ------------------------------------------------------------------

    def _tid_for(self, proc: Any) -> int:
        if proc is None:
            return 0
        tid = self._tids.get(proc)
        if tid is None:
            tid = self._tids[proc] = len(self._tids) + 1
            self.tid_names[tid] = getattr(proc, "name", "process")
        return tid
