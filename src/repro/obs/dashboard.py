"""Render telemetry snapshots: ASCII timeline dashboards and HTML export.

Both renderers consume the JSON snapshot form produced by
:meth:`repro.obs.telemetry.Telemetry.snapshot` (or the merged document
from :func:`repro.obs.telemetry.merge_snapshots`), never live objects —
so a dashboard of a fan-out run renders from exactly the bytes the
workers shipped, and identical snapshots produce identical output bytes.

The ASCII form is a per-series sparkline timeline (oldest window on the
left) with run-wide summary columns, grouped by tag so utilization,
queue-depth, rate, and progress series read as blocks.  The HTML form is
a single self-contained file (inline SVG, inline CSS, no external
assets) suitable for a CI artifact.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

__all__ = ["render_dashboard", "render_html", "write_html", "sparkline"]

# Ten intensity levels, dimmest to brightest.  Pure ASCII on purpose:
# dashboards must survive CI logs, ttys without UTF-8, and `cmp`.
_LEVELS = " .:-=+*#%@"

# Render order for tag groups (anything else sorts after, alphabetically).
_TAG_ORDER = ("util", "queue", "rate", "progress", "gauge")

_TAG_TITLES = {
    "util": "utilization (busy fraction per window)",
    "queue": "queue depth (max waiters per window)",
    "rate": "rates (per-second, window mean)",
    "progress": "progress counters (events per window)",
    "gauge": "gauges (window mean)",
}


def _series_points(entry: Dict[str, Any]) -> List[Optional[float]]:
    """The plottable per-window values for one series.

    Utilization and gauges plot the window mean; queues plot the window
    *max* (a queue that spikes and drains within a window should still
    show the spike); progress counters plot the per-window event count.
    """
    rollup = entry["rollup"]
    tag = entry["tag"]
    if tag == "queue":
        return list(rollup["maxs"])
    if tag == "progress":
        return [float(c) if c else None for c in rollup["counts"]]
    return [rollup["sums"][i] / rollup["counts"][i]
            if rollup["counts"][i] else None
            for i in range(len(rollup["counts"]))]


def sparkline(points: List[Optional[float]], width: int,
              lo: float, hi: float) -> str:
    """Map ``points`` onto ``width`` ASCII intensity cells.

    Values scale linearly from ``lo`` to ``hi``; ``None`` (no samples in
    that window) renders as a space.  When there are more points than
    cells, each cell shows the max of its span (peaks survive the
    squeeze); fewer points than cells render one cell each, left-packed.
    """
    if not points:
        return " " * width
    cells: List[str] = []
    n = len(points)
    span = hi - lo
    steps = min(width, n)
    for c in range(steps):
        start = c * n // steps
        end = max(start + 1, (c + 1) * n // steps)
        chunk = [p for p in points[start:end] if p is not None]
        if not chunk:
            cells.append(" ")
            continue
        value = max(chunk)
        if span <= 0:
            level = len(_LEVELS) - 1 if value > 0 else 1
        else:
            level = int((value - lo) / span * (len(_LEVELS) - 1) + 0.5)
        cells.append(_LEVELS[max(0, min(level, len(_LEVELS) - 1))])
    return "".join(cells).ljust(width)


def _fmt(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if value == 0:
        return "0"
    if abs(value) >= 1000 or abs(value) < 0.01:
        return "%.3g" % value
    return "%.3f" % value


def _group_series(snapshot: Dict[str, Any]) -> List[Tuple[str, List[str]]]:
    """Series names grouped by tag, in stable render order."""
    by_tag: Dict[str, List[str]] = {}
    for name in sorted(snapshot.get("series", {})):
        tag = snapshot["series"][name]["tag"]
        by_tag.setdefault(tag, []).append(name)
    ordered = [t for t in _TAG_ORDER if t in by_tag]
    ordered += sorted(t for t in by_tag if t not in _TAG_ORDER)
    return [(tag, by_tag[tag]) for tag in ordered]


def render_dashboard(snapshot: Dict[str, Any], title: str = "telemetry",
                     width: int = 48) -> str:
    """Render one snapshot as an ASCII timeline dashboard (a string).

    Deterministic: equal snapshots yield equal bytes (series sort by id,
    groups render in fixed tag order), which is what the merge-
    determinism tests and the CI byte-identity checks compare.
    """
    lines: List[str] = []
    series = snapshot.get("series", {})
    name_width = max([len(n) for n in series] + [8])
    rule = "=" * (name_width + width + 30)
    lines.append(rule)
    lines.append("dash: %s  (%d series, %d samples)"
                 % (title, len(series), snapshot.get("samples", 0)))
    lines.append(rule)
    for tag, names in _group_series(snapshot):
        lines.append("")
        lines.append("-- %s" % _TAG_TITLES.get(tag, tag))
        # One scale per group so series within a block are comparable.
        group_points = {name: _series_points(series[name]) for name in names}
        values = [p for pts in group_points.values()
                  for p in pts if p is not None]
        lo = 0.0
        hi = 1.0 if tag == "util" else (max(values) if values else 1.0)
        for name in names:
            rollup = series[name]["rollup"]
            spark = sparkline(group_points[name], width, lo, hi)
            suffix = ""
            if rollup.get("dropped_windows"):
                suffix = "  (+%d win dropped)" % rollup["dropped_windows"]
            mean = (rollup["total"] / rollup["count"]
                    if rollup["count"] else None)
            lines.append("%-*s |%s| mean=%s max=%s%s"
                         % (name_width, name, spark, _fmt(mean),
                            _fmt(rollup["max"]), suffix))
        lines.append("   scale: %s -> %s ('%s' lowest, '%s' highest)"
                     % (_fmt(lo), _fmt(hi), _LEVELS[1], _LEVELS[-1]))
    findings = snapshot.get("findings", [])
    lines.append("")
    if findings:
        lines.append("-- watcher findings")
        for code, series_id, message in findings:
            lines.append("  %s %s: %s" % (code, series_id, message))
    else:
        lines.append("-- watcher findings: none")
    lines.append(rule)
    return "\n".join(lines) + "\n"


# -- HTML export --------------------------------------------------------------

_HTML_HEAD = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>%(title)s</title>
<style>
body { font-family: ui-monospace, Menlo, Consolas, monospace;
       background: #101418; color: #d8dee4; margin: 2em; }
h1 { font-size: 1.2em; border-bottom: 1px solid #2c333b; }
h2 { font-size: 1.0em; color: #9fb3c8; margin-top: 1.6em; }
h3 { font-size: 0.85em; color: #7d8b99; margin: 1em 0 0.2em; }
table { border-collapse: collapse; }
td { padding: 0.1em 0.8em 0.1em 0; font-size: 0.8em;
     vertical-align: middle; white-space: nowrap; }
svg { background: #161c22; border: 1px solid #2c333b; }
.findings li { color: #e8b339; font-size: 0.85em; }
.ok { color: #56b374; font-size: 0.85em; }
.meta { color: #7d8b99; font-size: 0.75em; }
</style>
</head>
<body>
<h1>%(title)s</h1>
<p class="meta">streaming telemetry dashboard &mdash; self-contained
export (no external assets)</p>
"""

_HTML_FOOT = "</body>\n</html>\n"

_SVG_W = 360
_SVG_H = 36


def _svg_timeline(points: List[Optional[float]], lo: float,
                  hi: float) -> str:
    """One series as an inline SVG bar timeline."""
    n = max(len(points), 1)
    bar_w = _SVG_W / n
    span = hi - lo
    bars: List[str] = []
    for i, p in enumerate(points):
        if p is None:
            continue
        frac = 1.0 if span <= 0 and p > 0 else (
            0.0 if span <= 0 else (p - lo) / span)
        frac = max(0.0, min(frac, 1.0))
        h = max(1.0, frac * (_SVG_H - 2))
        bars.append('<rect x="%.2f" y="%.2f" width="%.2f" height="%.2f" '
                    'fill="#4f9cf9"/>'
                    % (i * bar_w, _SVG_H - 1 - h, max(bar_w - 0.5, 0.5), h))
    return ('<svg width="%d" height="%d" viewBox="0 0 %d %d">%s</svg>'
            % (_SVG_W, _SVG_H, _SVG_W, _SVG_H, "".join(bars)))


def _escape(text: str) -> str:
    return (text.replace("&", "&amp;").replace("<", "&lt;")
            .replace(">", "&gt;"))


def render_html(sections: List[Tuple[str, Dict[str, Any]]],
                title: str = "repro telemetry") -> str:
    """Render snapshots as one self-contained HTML document.

    ``sections`` is a list of ``(heading, snapshot)`` pairs — one per
    stack plus optionally a merged section.  Output bytes are a pure
    function of the input, like the ASCII form.
    """
    parts = [_HTML_HEAD % {"title": _escape(title)}]
    for heading, snapshot in sections:
        parts.append("<h2>%s <span class=\"meta\">(%d samples)</span></h2>\n"
                     % (_escape(heading), snapshot.get("samples", 0)))
        series = snapshot.get("series", {})
        for tag, names in _group_series(snapshot):
            parts.append("<h3>%s</h3>\n"
                         % _escape(_TAG_TITLES.get(tag, tag)))
            group_points = {n: _series_points(series[n]) for n in names}
            values = [p for pts in group_points.values()
                      for p in pts if p is not None]
            lo = 0.0
            hi = 1.0 if tag == "util" else (max(values) if values else 1.0)
            parts.append("<table>\n")
            for name in names:
                rollup = series[name]["rollup"]
                mean = (rollup["total"] / rollup["count"]
                        if rollup["count"] else None)
                parts.append(
                    "<tr><td>%s</td><td>%s</td>"
                    "<td>mean=%s</td><td>max=%s</td></tr>\n"
                    % (_escape(name),
                       _svg_timeline(group_points[name], lo, hi),
                       _fmt(mean), _fmt(rollup["max"])))
            parts.append("</table>\n")
        findings = snapshot.get("findings", [])
        if findings:
            parts.append("<ul class=\"findings\">\n")
            for code, series_id, message in findings:
                parts.append("<li>%s %s: %s</li>\n"
                             % (_escape(code), _escape(series_id),
                                _escape(message)))
            parts.append("</ul>\n")
        else:
            parts.append("<p class=\"ok\">watcher findings: none</p>\n")
    parts.append(_HTML_FOOT)
    return "".join(parts)


def write_html(path: str, sections: List[Tuple[str, Dict[str, Any]]],
               title: str = "repro telemetry") -> None:
    """Write :func:`render_html` output to ``path`` (UTF-8)."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(render_html(sections, title=title))
