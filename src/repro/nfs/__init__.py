"""NFS protocol stack: v2/v3/v4 client and server."""

from . import protocol
from .client import NfsClient
from .server import NfsServer, ServerState

__all__ = ["NfsClient", "NfsServer", "ServerState", "protocol"]
