"""NFS protocol stack: v2/v3/v4 client and server, plus pNFS striping."""

from . import protocol
from .client import NfsClient
from .pnfs import StripeLayout, StripedNfsClient
from .server import NfsServer, ServerState

__all__ = ["NfsClient", "NfsServer", "ServerState", "StripeLayout",
           "StripedNfsClient", "protocol"]
