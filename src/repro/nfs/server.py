"""The NFS server: protocol handlers over the server-resident ext3.

File handles are inode numbers.  The server is *stateless* for v2/v3 — every
request carries the full identification it needs — and keeps the small
amount of v4/enhancement state (delegations, cache registrations) in
:class:`ServerState`.

Version-relevant behaviors:

* replies carry post-op attributes (v3/v4 always; v2 only on attribute-
  bearing procedures), which is what lets v3 clients skip follow-up
  GETATTRs;
* WRITE with ``stable=False`` is acknowledged once the data is in the
  server's buffer cache (the Linux async-export behavior); COMMIT forces
  it out.  NFS v2 has no unstable writes: data is flushed before the reply;
* meta-data mutations run synchronously against the server filesystem —
  the server's own journal batches its *disk* writes, but the client still
  pays one round trip per update, the crux of Section 6.2.
"""

from __future__ import annotations

from typing import Dict, Generator, Optional, Set

from ..core.params import CpuParams, NfsParams
from ..fs.errors import FsError, FileNotFound
from ..fs.ext3 import Ext3Fs, ROOT_INO
from ..fs.inode import Inode
from ..net.message import Message
from ..net.rpc import RpcPeer
from ..obs.tracer import NULL_TRACER, NullTracer
from ..sim import Resource, Simulator
from . import protocol as p

__all__ = ["NfsServer", "ServerState"]


def _pack_attrs(inode: Inode) -> Dict:
    return {
        "ino": inode.ino,
        "type": inode.itype,
        "mode": inode.mode,
        "uid": inode.uid,
        "gid": inode.gid,
        "nlink": inode.nlink,
        "size": inode.size,
        "atime": inode.atime,
        "mtime": inode.mtime,
        "ctime": inode.ctime,
        "generation": inode.generation,
    }


class ServerState:
    """v4/enhancement state: delegations and meta-data cache registrations.

    One instance may back several :class:`NfsServer` frontends (one per
    client transport) exporting the same filesystem — the multi-client
    configuration of :mod:`repro.core.multiclient`.
    """

    def __init__(self):
        # ino -> set of peer names holding its meta-data cached
        self.cache_registry: Dict[int, Set[str]] = {}
        # ino -> peer name holding a directory delegation
        self.dir_delegations: Dict[int, str] = {}
        # client name -> the server-side RPC peer that can call it back
        self.peer_of: Dict[str, "RpcPeer"] = {}
        # per-inode write serialization, shared across frontends
        self.write_locks: Dict[int, "Resource"] = {}
        self.callbacks_sent = 0
        self.delegations_granted = 0
        self.delegations_recalled = 0
        # pNFS-style export striping (repro.nfs.pnfs): the layout function
        # this server answers LAYOUTGET with when it acts as the metadata
        # server.  None on a plain single-export server, which keeps every
        # pre-existing configuration byte-identical.
        self.layout = None
        self.layouts_granted = 0


class NfsServer:
    """Protocol dispatch over a server-side :class:`Ext3Fs`."""

    def __init__(
        self,
        sim: Simulator,
        fs: Ext3Fs,
        rpc: RpcPeer,
        params: Optional[NfsParams] = None,
        cpu_params: Optional[CpuParams] = None,
        state: Optional["ServerState"] = None,
        name: str = "nfsd",
        tracer: Optional[NullTracer] = None,
    ):
        self.sim = sim
        self.fs = fs
        self.rpc = rpc
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.params = params if params is not None else NfsParams()
        self.cpu_params = cpu_params if cpu_params is not None else CpuParams()
        self.name = name
        self.state = state if state is not None else ServerState()
        self.root_ino = ROOT_INO
        self.ops_served = 0
        self.restarts = 0
        # Per-inode write serialization (the kernel's page/inode locking):
        # concurrent WRITEs to one file are processed one at a time, which
        # bounds streaming-write throughput exactly as the paper observed.
        self._write_locks = self.state.write_locks
        rpc.set_handler(self.handle)
        self._dispatch = {
            p.GETATTR: self._op_getattr,
            p.SETATTR: self._op_setattr,
            p.LOOKUP: self._op_lookup,
            p.ACCESS: self._op_access,
            p.READLINK: self._op_readlink,
            p.READ: self._op_read,
            p.WRITE: self._op_write,
            p.CREATE: self._op_create,
            p.MKDIR: self._op_mkdir,
            p.SYMLINK: self._op_symlink,
            p.REMOVE: self._op_remove,
            p.RMDIR: self._op_rmdir,
            p.RENAME: self._op_rename,
            p.LINK: self._op_link,
            p.READDIR: self._op_readdir,
            p.COMMIT: self._op_commit,
            p.COMPOUND: self._op_compound,
            p.OPEN: self._op_open,
            p.OPEN_CONFIRM: self._op_open_confirm,
            p.CLOSE: self._op_close,
            p.DELEGRETURN: self._op_delegreturn,
            p.DELEGDIR: self._op_delegdir,
            p.DELEGUPDATE: self._op_delegupdate,
            p.FSSTAT: self._op_fsstat,
            p.LAYOUTGET: self._op_layoutget,
        }

    # -- crash recovery (repro.faults) ----------------------------------------

    def restart(self) -> None:
        """The server process comes back after a crash.

        v2/v3 are stateless — every request carries what the server needs,
        so the only casualty is in-memory replay state (the duplicate-
        request cache, knfsd's is not persistent).  A v4-style server also
        loses its delegations and cache registrations: clients rediscover
        and re-register through ordinary requests, exactly the grace-period
        behavior the protocol's recovery story depends on.
        """
        self.restarts += 1
        self.rpc.session_reset()
        if self.params.version >= 4:
            self.state.dir_delegations.clear()
            self.state.cache_registry.clear()
        if self.tracer.enabled:
            self.tracer.instant(
                "nfs.server-restart", cat="fault", track="server",
                stateless=self.params.version < 4,
            )

    # -- dispatch -------------------------------------------------------------------

    def handle(self, message: Message) -> Generator:
        """RPC handler: returns ``(reply_payload_bytes, reply_body)``."""
        if self.tracer.enabled:
            result = yield from self.tracer.wrap(
                "nfs:" + message.op, self._handle_inner(message),
                cat="nfs", track="server",
            )
            return result
        result = yield from self._handle_inner(message)
        return result

    def _handle_inner(self, message: Message) -> Generator:
        handler = self._dispatch.get(message.op)
        if handler is None:
            return 0, {"status": p.NfsStatus.INVAL, "detail": message.op}
        client = message.body.get("client")
        if client is not None:
            self.state.peer_of[client] = self.rpc
        self.ops_served += 1
        try:
            result = yield from handler(message.body)
        except FsError as error:
            return 0, {"status": p.NfsStatus.from_exception(error)}
        return result

    def _inode(self, ino: int) -> Generator:
        inode = yield from self.fs.iget(ino)
        return inode

    # -- procedures -------------------------------------------------------------------

    def _op_getattr(self, args: Dict) -> Generator:
        inode = yield from self._inode(args["ino"])
        self._register_cache(inode.ino, args.get("client"))
        return p.ATTR_BYTES, {"status": p.NfsStatus.OK, "attrs": _pack_attrs(inode)}

    def _op_setattr(self, args: Dict) -> Generator:
        inode = yield from self._inode(args["ino"])
        yield from self.fs.setattr(
            inode,
            mode=args.get("mode"),
            uid=args.get("uid"),
            gid=args.get("gid"),
            size=args.get("size"),
            atime=args.get("atime"),
            mtime=args.get("mtime"),
        )
        yield from self._invalidate(inode.ino, args.get("client"))
        return p.ATTR_BYTES, {"status": p.NfsStatus.OK, "attrs": _pack_attrs(inode)}

    def _op_lookup(self, args: Dict) -> Generator:
        parent = yield from self._inode(args["dir"])
        try:
            ino = yield from self.fs.dir_lookup(parent, args["name"])
        except FileNotFound:
            # The name may exist only in another client's delegated,
            # not-yet-replayed state: recall the delegation and retry.
            recalled = yield from self._recall_if_delegated(
                parent.ino, args.get("client")
            )
            if not recalled:
                raise
            ino = yield from self.fs.dir_lookup(parent, args["name"])
        inode = yield from self._inode(ino)
        self._register_cache(ino, args.get("client"))
        return (
            p.FH_BYTES + p.ATTR_BYTES,
            {"status": p.NfsStatus.OK, "ino": ino, "attrs": _pack_attrs(inode)},
        )

    def _op_access(self, args: Dict) -> Generator:
        inode = yield from self._inode(args["ino"])
        ok = self.fs.access(inode, args.get("want", 4), args.get("uid", 0))
        self._register_cache(inode.ino, args.get("client"))
        return p.ATTR_BYTES, {
            "status": p.NfsStatus.OK,
            "granted": ok,
            "attrs": _pack_attrs(inode),
        }

    def _op_readlink(self, args: Dict) -> Generator:
        inode = yield from self._inode(args["ino"])
        target = yield from self.fs.readlink(inode)
        return len(target), {"status": p.NfsStatus.OK, "target": target}

    def _op_read(self, args: Dict) -> Generator:
        inode = yield from self._inode(args["ino"])
        done = yield from self.fs.read_file(inode, args["offset"], args["count"])
        return done, {
            "status": p.NfsStatus.OK,
            "count": done,
            "eof": args["offset"] + done >= inode.size,
            "attrs": _pack_attrs(inode),
        }

    def _op_write(self, args: Dict) -> Generator:
        inode = yield from self._inode(args["ino"])
        lock = self._write_locks.get(inode.ino)
        if lock is None:
            lock = Resource(self.sim, capacity=1, name="%s.wlock.%d" % (self.name, inode.ino))
            self._write_locks[inode.ino] = lock
        yield from lock.acquire()
        try:
            yield from self.fs._charge(self.cpu_params.nfs_write_service)
            done = yield from self.fs.write_file(inode, args["offset"], args["count"])
            stable = args.get("stable", False)
            if stable or not self.params.server_async_export:
                yield from self.fs.fsync(inode)
        finally:
            lock.release()
        # A write changes size/mtime: other clients' cached meta-data for
        # this file is now stale.
        yield from self._invalidate(inode.ino, args.get("client"))
        return p.ATTR_BYTES, {
            "status": p.NfsStatus.OK,
            "count": done,
            "committed": stable or not self.params.server_async_export,
            "attrs": _pack_attrs(inode),
        }

    def _op_create(self, args: Dict) -> Generator:
        parent = yield from self._inode(args["dir"])
        inode = yield from self.fs.create(parent, args["name"], args.get("mode", 0o644))
        yield from self._invalidate(parent.ino, args.get("client"))
        self._register_cache(inode.ino, args.get("client"))
        return (
            p.FH_BYTES + 2 * p.ATTR_BYTES,
            {
                "status": p.NfsStatus.OK,
                "ino": inode.ino,
                "attrs": _pack_attrs(inode),
                "dir_attrs": _pack_attrs(parent),
            },
        )

    def _op_mkdir(self, args: Dict) -> Generator:
        parent = yield from self._inode(args["dir"])
        inode = yield from self.fs.mkdir(parent, args["name"], args.get("mode", 0o755))
        yield from self._invalidate(parent.ino, args.get("client"))
        self._register_cache(inode.ino, args.get("client"))
        return (
            p.FH_BYTES + 2 * p.ATTR_BYTES,
            {
                "status": p.NfsStatus.OK,
                "ino": inode.ino,
                "attrs": _pack_attrs(inode),
                "dir_attrs": _pack_attrs(parent),
            },
        )

    def _op_symlink(self, args: Dict) -> Generator:
        parent = yield from self._inode(args["dir"])
        inode = yield from self.fs.symlink(parent, args["name"], args["target"])
        yield from self._invalidate(parent.ino, args.get("client"))
        body = {"status": p.NfsStatus.OK, "ino": inode.ino}
        payload = p.FH_BYTES
        if self.params.version >= 3:
            body["attrs"] = _pack_attrs(inode)
            payload += p.ATTR_BYTES
        return payload, body

    def _op_remove(self, args: Dict) -> Generator:
        parent = yield from self._inode(args["dir"])
        yield from self.fs.unlink(parent, args["name"])
        yield from self._invalidate(parent.ino, args.get("client"))
        body = {"status": p.NfsStatus.OK}
        if self.params.version >= 3:
            body["dir_attrs"] = _pack_attrs(parent)
        return p.ATTR_BYTES, body

    def _op_rmdir(self, args: Dict) -> Generator:
        parent = yield from self._inode(args["dir"])
        yield from self.fs.rmdir(parent, args["name"])
        yield from self._invalidate(parent.ino, args.get("client"))
        body = {"status": p.NfsStatus.OK}
        if self.params.version >= 3:
            body["dir_attrs"] = _pack_attrs(parent)
        return p.ATTR_BYTES, body

    def _op_rename(self, args: Dict) -> Generator:
        src = yield from self._inode(args["src_dir"])
        dst = yield from self._inode(args["dst_dir"])
        yield from self.fs.rename(src, args["src_name"], dst, args["dst_name"])
        yield from self._invalidate(src.ino, args.get("client"))
        if dst.ino != src.ino:
            yield from self._invalidate(dst.ino, args.get("client"))
        body = {"status": p.NfsStatus.OK}
        payload = 8
        if self.params.version >= 3:
            body["dir_attrs"] = _pack_attrs(dst)
            payload += p.ATTR_BYTES
        return payload, body

    def _op_link(self, args: Dict) -> Generator:
        parent = yield from self._inode(args["dir"])
        target = yield from self._inode(args["target"])
        yield from self.fs.link(parent, args["name"], target)
        yield from self._invalidate(parent.ino, args.get("client"))
        yield from self._invalidate(target.ino, args.get("client"))
        body = {"status": p.NfsStatus.OK}
        payload = 8
        if self.params.version >= 3:
            body["attrs"] = _pack_attrs(target)
            payload += p.ATTR_BYTES
        return payload, body

    def _op_readdir(self, args: Dict) -> Generator:
        inode = yield from self._inode(args["ino"])
        names = yield from self.fs.readdir(inode)
        self._register_cache(inode.ino, args.get("client"))
        payload = p.DIRENT_BYTES * len(names) + p.ATTR_BYTES
        return payload, {
            "status": p.NfsStatus.OK,
            "names": names,
            "attrs": _pack_attrs(inode),
        }

    def _op_commit(self, args: Dict) -> Generator:
        inode = yield from self._inode(args["ino"])
        yield from self.fs.fsync(inode)
        return 8, {"status": p.NfsStatus.OK, "attrs": _pack_attrs(inode)}

    def _op_compound(self, args: Dict) -> Generator:
        """Resolve a whole path in one exchange (v4 compounds, §6.3).

        The compound bundles the per-component LOOKUP (+ACCESS) ops of a
        walk into one message; the server performs the same filesystem
        work, returning the resolved inode numbers and the final object's
        attributes.
        """
        current = yield from self._inode(args["dir"])
        resolved = []
        for name in args["names"]:
            ino = yield from self.fs.dir_lookup(current, name)
            current = yield from self._inode(ino)
            if args.get("access_checks"):
                self.fs.access(current, 1, args.get("uid", 0))
            resolved.append({"name": name, "ino": ino,
                             "type": current.itype})
            self._register_cache(ino, args.get("client"))
        return (
            p.FH_BYTES * max(1, len(resolved)) + p.ATTR_BYTES,
            {
                "status": p.NfsStatus.OK,
                "resolved": resolved,
                "attrs": _pack_attrs(current),
            },
        )

    def _op_fsstat(self, args: Dict) -> Generator:
        yield from self.fs.cache.read(self.fs.layout.superblock)
        return 48, {
            "status": p.NfsStatus.OK,
            "free_blocks": self.fs.block_alloc.free_count,
        }

    def _op_layoutget(self, args: Dict) -> Generator:
        """pNFS-style layout grant: which data server owns this path.

        Whole-file layouts (export sharding): the metadata server answers
        from its deterministic :class:`~repro.nfs.pnfs.StripeLayout`; a
        server without one grants the degenerate single-export layout.
        The hop reads the export root — the MDS touches its namespace
        state before answering, so the grant costs a real server visit.
        """
        yield from self._inode(self.root_ino)
        layout = self.state.layout
        self.state.layouts_granted += 1
        if layout is None:
            return p.FH_BYTES + p.ATTR_BYTES, {
                "status": p.NfsStatus.OK, "server": 0, "nservers": 1,
            }
        return p.FH_BYTES + p.ATTR_BYTES, {
            "status": p.NfsStatus.OK,
            "server": layout.server_for(args["path"]),
            "nservers": layout.nservers,
        }

    # -- v4 statefulness ------------------------------------------------------------------

    def _op_open(self, args: Dict) -> Generator:
        inode = yield from self._inode(args["ino"])
        delegated = bool(self.params.file_delegation and inode.is_file)
        if delegated:
            self.state.delegations_granted += 1
        return p.FH_BYTES + p.ATTR_BYTES, {
            "status": p.NfsStatus.OK,
            "attrs": _pack_attrs(inode),
            "delegation": delegated,
        }

    def _op_close(self, args: Dict) -> Generator:
        inode = yield from self._inode(args["ino"])
        return 8, {"status": p.NfsStatus.OK, "attrs": _pack_attrs(inode)}

    def _op_open_confirm(self, args: Dict) -> Generator:
        yield from self.fs._charge(self.cpu_params.vfs_op)
        return 8, {"status": p.NfsStatus.OK}

    def _op_delegdir(self, args: Dict) -> Generator:
        """Grant a directory delegation plus an inode-number reservation.

        The reservation is what lets the client create objects locally
        with authoritative inode numbers and replay them later in one
        DELEGUPDATE batch (DESIGN.md, Section-7 enhancements).
        """
        inode = yield from self._inode(args["ino"])
        if not inode.is_dir:
            return 0, {"status": p.NfsStatus.NOTDIR}
        holder = self.state.dir_delegations.get(inode.ino)
        client = args.get("client", "?")
        if holder is not None and holder != client:
            # Recall the delegation: the holder flushes its pending
            # updates and releases; then the new client may acquire.
            peer = self.state.peer_of.get(holder)
            if peer is None:
                return 8, {"status": p.NfsStatus.OK, "granted": False}
            self.state.delegations_recalled += 1
            yield from peer.call(p.CB_RECALL, payload_bytes=16, ino=inode.ino)
            self.state.dir_delegations.pop(inode.ino, None)
        self.state.dir_delegations[inode.ino] = client
        self.state.delegations_granted += 1
        reserved = self.fs.inode_alloc.reserve_range(args.get("reserve", 256))
        return 8 + 8 * 2, {
            "status": p.NfsStatus.OK,
            "granted": True,
            "ino_range": (reserved[0], reserved[-1]),
        }

    def _op_delegreturn(self, args: Dict) -> Generator:
        self.state.dir_delegations.pop(args["ino"], None)
        self.state.delegations_recalled += 1
        yield from self.fs._charge(self.cpu_params.vfs_op)
        return 8, {"status": p.NfsStatus.OK}

    # -- Section-7 enhancements --------------------------------------------------------------

    def _op_delegupdate(self, args: Dict) -> Generator:
        """Apply a batch of delegated meta-data updates (Section 7).

        The client performed these operations locally under a directory
        delegation; the batch replays them against the authoritative
        filesystem, the file-access analogue of a journal commit.
        """
        applied = 0
        skipped = 0
        client = args.get("client")
        for record in args["records"]:
            try:
                yield from self._apply_record(record)
                applied += 1
            except FsError:
                skipped += 1  # e.g. remove of an already-gone name
                continue
            for key in ("dir", "src_dir", "dst_dir", "ino", "target"):
                ino = record.get(key)
                if ino is not None:
                    yield from self._invalidate(ino, client)
        return 8, {"status": p.NfsStatus.OK, "applied": applied, "skipped": skipped}

    def _apply_record(self, record: Dict) -> Generator:
        kind = record["kind"]
        if kind == "mkdir":
            parent = yield from self._inode(record["dir"])
            inode = yield from self.fs.mkdir(
                parent, record["name"], record.get("mode", 0o755),
                ino=record.get("ino"),
            )
            record["result_ino"] = inode.ino
        elif kind == "create":
            parent = yield from self._inode(record["dir"])
            inode = yield from self.fs.create(
                parent, record["name"], record.get("mode", 0o644),
                ino=record.get("ino"),
            )
            record["result_ino"] = inode.ino
        elif kind == "remove":
            parent = yield from self._inode(record["dir"])
            yield from self.fs.unlink(parent, record["name"])
        elif kind == "rmdir":
            parent = yield from self._inode(record["dir"])
            yield from self.fs.rmdir(parent, record["name"])
        elif kind == "setattr":
            inode = yield from self._inode(record["ino"])
            yield from self.fs.setattr(
                inode,
                mode=record.get("mode"),
                uid=record.get("uid"),
                gid=record.get("gid"),
                size=record.get("size"),
                atime=record.get("atime"),
                mtime=record.get("mtime"),
            )
        elif kind == "link":
            parent = yield from self._inode(record["dir"])
            target = yield from self._inode(record["target"])
            yield from self.fs.link(parent, record["name"], target)
        elif kind == "rename":
            src = yield from self._inode(record["src_dir"])
            dst = yield from self._inode(record["dst_dir"])
            yield from self.fs.rename(src, record["src_name"], dst, record["dst_name"])
        else:
            raise FsError("unknown delegated record kind %r" % (kind,))
        return None

    def _recall_if_delegated(self, dir_ino: int, requester) -> Generator:
        """Recall another client's delegation on ``dir_ino``; True if so."""
        holder = self.state.dir_delegations.get(dir_ino)
        if holder is None or holder == requester:
            return False
        peer = self.state.peer_of.get(holder)
        if peer is None:
            return False
        self.state.delegations_recalled += 1
        yield from peer.call(p.CB_RECALL, payload_bytes=16, ino=dir_ino)
        self.state.dir_delegations.pop(dir_ino, None)
        return True

    # -- meta-data cache callbacks -------------------------------------------------------------

    def _register_cache(self, ino: int, client: Optional[str]) -> None:
        if not self.params.consistent_metadata_cache or client is None:
            return
        self.state.cache_registry.setdefault(ino, set()).add(client)

    def _invalidate(self, ino: int, mutating_client: Optional[str]) -> Generator:
        """Send CB_INVALIDATE to every *other* client caching ``ino``."""
        if not self.params.consistent_metadata_cache:
            return None
        holders = self.state.cache_registry.get(ino, set())
        for holder in sorted(holders):
            if holder == mutating_client:
                continue
            self.state.callbacks_sent += 1
            peer = self.state.peer_of.get(holder, self.rpc)
            yield from peer.call(p.CB_INVALIDATE, payload_bytes=16, ino=ino)
        holders.intersection_update({mutating_client} if mutating_client else set())
        return None
