"""NFS protocol vocabulary shared by client and server.

Op names follow the RFC procedure names (v2: RFC 1094, v3: RFC 1813,
v4: RFC 3530).  Sizes are representative on-the-wire payload sizes used for
byte accounting; the paper's analysis keys off message *counts*, with bytes
as a secondary column (Table 4).
"""

from __future__ import annotations

__all__ = [
    "GETATTR", "SETATTR", "LOOKUP", "ACCESS", "READLINK", "READ", "WRITE",
    "CREATE", "MKDIR", "SYMLINK", "REMOVE", "RMDIR", "RENAME", "LINK",
    "READDIR", "COMMIT", "OPEN", "OPEN_CONFIRM", "COMPOUND", "CLOSE", "DELEGRETURN",
    "DELEGDIR", "CB_INVALIDATE", "CB_RECALL",
    "DELEGUPDATE", "FSSTAT",
    "ATTR_BYTES", "FH_BYTES", "DIRENT_BYTES",
    "NfsStatus",
]

GETATTR = "GETATTR"
SETATTR = "SETATTR"
LOOKUP = "LOOKUP"
ACCESS = "ACCESS"
READLINK = "READLINK"
READ = "READ"
WRITE = "WRITE"
CREATE = "CREATE"
MKDIR = "MKDIR"
SYMLINK = "SYMLINK"
REMOVE = "REMOVE"
RMDIR = "RMDIR"
RENAME = "RENAME"
LINK = "LINK"
READDIR = "READDIR"
COMMIT = "COMMIT"
OPEN = "OPEN"            # v4 stateful open
OPEN_CONFIRM = "OPEN_CONFIRM"  # v4 first-open confirmation
COMPOUND = "COMPOUND"          # v4 compound path resolution (Section 6.3)
CLOSE = "CLOSE"          # v4 stateful close
DELEGRETURN = "DELEGRETURN"
DELEGDIR = "DELEGDIR"    # Section-7: acquire a directory delegation
# Section-7 enhancement traffic:
CB_INVALIDATE = "CB_INVALIDATE"   # server -> client meta-data cache callback
CB_RECALL = "CB_RECALL"           # server -> client directory-delegation recall
DELEGUPDATE = "DELEGUPDATE"       # batched delegated meta-data updates
FSSTAT = "FSSTAT"
LAYOUTGET = "LAYOUTGET"  # pNFS-style layout grant from the metadata server

ATTR_BYTES = 96      # fattr3-ish attribute structure
FH_BYTES = 32        # file handle
DIRENT_BYTES = 32    # per readdir entry


class NfsStatus:
    OK = "ok"
    NOENT = "noent"
    EXIST = "exist"
    NOTDIR = "notdir"
    ISDIR = "isdir"
    NOTEMPTY = "notempty"
    ACCES = "acces"
    INVAL = "inval"
    STALE = "stale"

    #: map a status to the filesystem exception it round-trips to
    @staticmethod
    def to_exception(status: str, detail: str = ""):
        from ..fs.errors import (
            DirectoryNotEmpty,
            FileExists,
            FileNotFound,
            FsError,
            InvalidArgument,
            IsADirectory,
            NotADirectory,
            PermissionDenied,
        )

        table = {
            NfsStatus.NOENT: FileNotFound,
            NfsStatus.EXIST: FileExists,
            NfsStatus.NOTDIR: NotADirectory,
            NfsStatus.ISDIR: IsADirectory,
            NfsStatus.NOTEMPTY: DirectoryNotEmpty,
            NfsStatus.ACCES: PermissionDenied,
            NfsStatus.INVAL: InvalidArgument,
            NfsStatus.STALE: FsError,
        }
        return table.get(status, FsError)(detail)

    @staticmethod
    def from_exception(error: BaseException) -> str:
        from ..fs.errors import (
            DirectoryNotEmpty,
            FileExists,
            FileNotFound,
            InvalidArgument,
            IsADirectory,
            NotADirectory,
            PermissionDenied,
        )

        table = [
            (FileNotFound, NfsStatus.NOENT),
            (FileExists, NfsStatus.EXIST),
            (NotADirectory, NfsStatus.NOTDIR),
            (IsADirectory, NfsStatus.ISDIR),
            (DirectoryNotEmpty, NfsStatus.NOTEMPTY),
            (PermissionDenied, NfsStatus.ACCES),
            (InvalidArgument, NfsStatus.INVAL),
        ]
        for klass, status in table:
            if isinstance(error, klass):
                return status
        raise error
