"""The NFS client: the paper's Linux 2.4 client behaviors, per version.

The client exposes the same syscall surface as :class:`~repro.fs.vfs.Vfs`,
so workloads run identically over NFS and iSCSI.  Modeled behaviors (each a
mechanism the paper's analysis leans on):

* **dentry + attribute caches** with a 3 s validity window; cached entries
  older than the window are revalidated with GETATTR; v2/v3 additionally
  revalidate the *target* of an operation even when fresh (close-to-open
  style consistency checks — the warm-cache message floor of Table 3);
* **data page cache** with a 30 s validity window, revalidated through file
  attributes (mtime mismatch invalidates);
* **bounded async write-back** (v3/v4): dirty pages drain through a pool
  of at most ``max_pending_writes`` in-flight WRITE RPCs; a writer that
  outruns the pool stalls — the pseudo-synchronous degradation of
  Section 4.5.  NFS v2 writes are fully synchronous;
* **per-page WRITE/READ RPCs** for streaming I/O (adjacent queued pages
  merge up to ``wsize``, reproducing the ~4.7 KB mean write of Table 4),
  while a single large read() syscall fetches in ``rsize`` chunks (Fig. 5);
* **sequential read-ahead** with a small pipeline depth;
* **v4**: per-component ACCESS checks, OPEN/OPEN_CONFIRM/CLOSE ceremony,
  file delegation (no revalidation for delegated files);
* **Section-7 enhancements** (off by default): a strongly-consistent
  meta-data cache (server callbacks instead of expiry) and directory
  delegation (meta-data updates applied locally and replayed in batched
  DELEGUPDATE RPCs every commit interval — the NFS analogue of ext3's
  update aggregation).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Generator, List, Optional, Set, Tuple

from ..cache.page_cache import PageCache
from ..core.params import CacheParams, CpuParams, NfsParams
from ..fs.errors import (
    FileExists,
    FileNotFound,
    InvalidArgument,
    NotADirectory,
)
from ..fs.inode import FileAttributes, FileType
from ..net.message import Message
from ..net.rpc import RpcPeer
from ..obs.tracer import NULL_TRACER, NullTracer
from ..sim import Event, Simulator
from . import protocol as p

__all__ = ["NfsClient"]

PAGE_SIZE = 4096
ROOT_INO = 1
MAX_SYMLINK_DEPTH = 8

O_RDONLY = 0
O_WRONLY = 1
O_RDWR = 2
O_CREAT = 0o100
O_TRUNC = 0o1000


class _Dentry:
    __slots__ = ("ino", "cached_at", "itype")

    def __init__(self, ino: int, cached_at: float, itype: str = FileType.REGULAR):
        self.ino = ino
        self.cached_at = cached_at
        self.itype = itype


class _Attrs:
    __slots__ = ("data", "cached_at")

    def __init__(self, data: Dict, cached_at: float):
        self.data = data
        self.cached_at = cached_at


class _OpenFile:
    __slots__ = ("ino", "offset", "flags")

    def __init__(self, ino: int, flags: int):
        self.ino = ino
        self.offset = 0
        self.flags = flags


class _DirCache:
    """Cached readdir results (names list, validated via dir attrs)."""

    __slots__ = ("names", "cached_at")

    def __init__(self, names: List[str], cached_at: float):
        self.names = names
        self.cached_at = cached_at


class NfsClient:
    """Syscall interface over NFS RPCs (see module docstring)."""

    def __init__(
        self,
        sim: Simulator,
        rpc: RpcPeer,
        params: Optional[NfsParams] = None,
        cache_params: Optional[CacheParams] = None,
        cpu_params: Optional[CpuParams] = None,
        readahead_pages: int = 2,
        name: str = "nfs-client",
        client_id: str = "client0",
        tracer: Optional[NullTracer] = None,
    ):
        self.sim = sim
        self.rpc = rpc
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.params = params if params is not None else NfsParams()
        self.cache_params = cache_params if cache_params is not None else CacheParams()
        self.cpu_params = cpu_params if cpu_params is not None else CpuParams()
        self.readahead_pages = readahead_pages
        self.name = name
        self.client_id = client_id

        self.cwd_ino = ROOT_INO
        self._fds: Dict[int, _OpenFile] = {}
        self._next_fd = 3
        self._dentries: Dict[Tuple[int, str], _Dentry] = {}
        self._attrs: Dict[int, _Attrs] = {}
        self._dir_contents: Dict[int, _DirCache] = {}
        self._symlink_inos: Set[int] = set()
        self._access_cache: Dict[int, float] = {}     # v4 per-dir ACCESS results
        self._symlinks: Dict[int, str] = {}
        self._confirmed_opens: Set[int] = set()       # v4 OPEN_CONFIRM done
        self._ceremonied_opens: Set[int] = set()      # v4 opens needing CLOSE
        self._delegated_files: Set[int] = set()       # v4 read delegations
        capacity_pages = max(64, self.cache_params.client_cache_bytes // PAGE_SIZE)
        self._pages = PageCache(capacity_pages, name=name + ".pages")
        self._dirty_size: Dict[int, int] = {}
        self._revalidated: Tuple[int, float] = (-1, -1.0)
        self._inflight_pages: Dict[Tuple[int, int], Event] = {}
        self._data_verified_at: Dict[int, float] = {}
        self._last_read_page: Dict[int, int] = {}

        # write-back state
        self._wb_queue: "OrderedDict[Tuple[int, int], float]" = OrderedDict()
        self._wb_forced: Set[int] = set()
        self._wb_inflight = 0
        self._wb_inflight_by_ino: Dict[int, int] = {}
        self._wb_kick = sim.event()
        self._wb_drain_waiters: List[Tuple[Optional[int], Event]] = []
        self._uncommitted: Set[int] = set()
        self.writeback_delay = getattr(self.params, "writeback_delay", 0.5)
        self._wb_daemon = sim.spawn(self._writeback_loop(), name=name + ".wb")

        # Section-7 directory delegation state
        self._deleg_dirs: Set[int] = set()
        self._deleg_records: List[Dict] = []
        self._deleg_unreplayed: Set[int] = set()      # locally created inos
        self._deleg_inflight: Set[int] = set()        # creates being replayed
        self._deleg_flush_gate: Optional[Event] = None
        self._deleg_ino_pool: List[int] = []
        self._deleg_flusher = None
        if self.params.directory_delegation:
            self._deleg_flusher = sim.spawn(
                self._deleg_flush_loop(), name=name + ".deleg"
            )
        rpc.set_handler(self._handle_callback)

    # ======================================================================
    # RPC plumbing
    # ======================================================================

    def _call(self, op: str, payload_bytes: int = 0, **body) -> Generator:
        body.setdefault("client", self.client_id)
        reply = yield from self.rpc.call(op, payload_bytes=payload_bytes, **body)
        status = reply.body.get("status", p.NfsStatus.OK)
        if status != p.NfsStatus.OK:
            error = p.NfsStatus.to_exception(status, reply.body.get("detail", op))
            # A reply to a retransmitted exchange: the error may be an
            # artifact of re-executing a non-idempotent op whose first
            # reply was lost (e.g. EEXIST from a replayed CREATE after a
            # server reboot emptied the duplicate-request cache).  Callers
            # check this flag to apply standard retry semantics.
            error.replayed = reply.is_retransmission
            raise error
        attrs = reply.body.get("attrs")
        if attrs is not None:
            self._cache_attrs(attrs)
        dir_attrs = reply.body.get("dir_attrs")
        if dir_attrs is not None:
            self._cache_attrs(dir_attrs)
        return reply

    def _handle_callback(self, message: Message) -> Generator:
        """Serve server->client calls (Section-7 cache invalidations)."""
        if message.op == p.CB_RECALL:
            ino = message.body["ino"]
            # Release the directory delegation: push pending updates,
            # then stop treating the directory as ours.
            yield from self._flush_deleg_records()
            self._deleg_dirs.discard(ino)
            self._dir_contents.pop(ino, None)
            return 8, {"status": p.NfsStatus.OK}
        if message.op == p.CB_INVALIDATE:
            ino = message.body["ino"]
            self._attrs.pop(ino, None)
            self._dir_contents.pop(ino, None)
            doomed = [key for key in self._dentries if key[0] == ino]
            for key in doomed:
                del self._dentries[key]
            yield from self.rpc._charge(64)
            return 8, {"status": p.NfsStatus.OK}
        return 0, {"status": p.NfsStatus.INVAL}

    # ======================================================================
    # attribute / dentry cache
    # ======================================================================

    def _cache_attrs(self, attrs: Dict) -> None:
        data = dict(attrs)
        # Local dirty writes may extend the file beyond what the server has
        # seen; the kernel inode (and so stat) reflects the local view.
        local_size = self._dirty_size.get(data["ino"])
        if local_size is not None and local_size > data["size"]:
            data["size"] = local_size
        self._attrs[data["ino"]] = _Attrs(data, self.sim.now)

    def _attrs_fresh(self, ino: int) -> Optional[Dict]:
        entry = self._attrs.get(ino)
        if entry is None:
            return None
        if self.params.consistent_metadata_cache:
            return entry.data  # valid until a server callback says otherwise
        if self.sim.now - entry.cached_at < self.params.attr_cache_validity:
            return entry.data
        return None

    def _getattr(self, ino: int) -> Generator:
        reply = yield from self._call(p.GETATTR, ino=ino)
        return reply.body["attrs"]

    def _revalidate_attrs(self, ino: int) -> Generator:
        """GETATTR unless the cached attributes are still fresh."""
        attrs = self._attrs_fresh(ino)
        if attrs is None:
            attrs = yield from self._getattr(ino)
        return attrs

    def _dentry_validity(self, dentry: _Dentry) -> float:
        # Linux acregmin/acdirmin: directory entries stay trusted an order
        # of magnitude longer than file entries.
        if dentry.itype == FileType.DIRECTORY:
            return self.params.data_cache_validity
        return self.params.attr_cache_validity

    def _dentry_fresh(self, dir_ino: int, name: str) -> Optional[_Dentry]:
        dentry = self._dentries.get((dir_ino, name))
        if dentry is None:
            return None
        if self.params.consistent_metadata_cache:
            return dentry
        if self.sim.now - dentry.cached_at < self._dentry_validity(dentry):
            return dentry
        return None

    def _cache_dentry(self, dir_ino: int, name: str, ino: int,
                      itype: str = FileType.REGULAR) -> None:
        self._dentries[(dir_ino, name)] = _Dentry(ino, self.sim.now, itype)

    def _drop_dentry(self, dir_ino: int, name: str) -> None:
        self._dentries.pop((dir_ino, name), None)

    # ======================================================================
    # path walking
    # ======================================================================

    def _split(self, path: str) -> Tuple[int, List[str]]:
        if not path:
            raise InvalidArgument("empty path")
        start = ROOT_INO if path.startswith("/") else self.cwd_ino
        parts = [part for part in path.split("/") if part and part != "."]
        return start, parts

    def _v4_access_check(self, dir_ino: int) -> Generator:
        """The v4 client's per-directory ACCESS call (cached while fresh)."""
        if not self.params.access_check_per_component:
            return None
        if self._delegated(dir_ino) or dir_ino in self._deleg_unreplayed:
            return None  # delegation covers access decisions locally
        checked = self._access_cache.get(dir_ino)
        if checked is not None and (
            self.sim.now - checked < self.params.data_cache_validity
            or self.params.consistent_metadata_cache
        ):
            return None
        yield from self._call(p.ACCESS, ino=dir_ino, want=1)
        self._access_cache[dir_ino] = self.sim.now
        return None

    def _lookup(self, dir_ino: int, name: str,
                allow_stale: bool = False) -> Generator:
        """Coroutine: resolve one component (cache, revalidate, or LOOKUP).

        ``allow_stale`` trusts an expired dentry without the revalidation
        GETATTR (kernel paths like utimes that skip the check).
        """
        dentry = self._dentries.get((dir_ino, name))
        if dentry is not None:
            fresh = self._dentry_fresh(dir_ino, name)
            if fresh is not None or allow_stale:
                return dentry.ino
            # Stale: revalidate the cached inode rather than re-looking-up.
            yield from self._getattr(dentry.ino)
            dentry.cached_at = self.sim.now
            self._revalidated = (dentry.ino, self.sim.now)
            return dentry.ino
        reply = yield from self._call(p.LOOKUP, dir=dir_ino, name=name)
        ino = reply.body["ino"]
        itype = reply.body["attrs"]["type"]
        self._cache_dentry(dir_ino, name, ino, itype)
        if itype == FileType.SYMLINK:
            self._symlink_inos.add(ino)
        return ino

    def _symlink_target(self, ino: int) -> Generator:
        """Coroutine: fetch (or reuse) a symlink's target."""
        cached = self._symlinks.get(ino)
        if cached is not None:
            return cached
        reply = yield from self._call(p.READLINK, ino=ino)
        self._symlinks[ino] = reply.body["target"]
        return reply.body["target"]


    def _compound_walk(self, start: int, names) -> Generator:
        """Resolve several cached-or-not components in one COMPOUND (§6.3).

        Components already fresh in the dentry cache are skipped; the
        remainder — however many — cost a single exchange.
        """
        current = start
        index = 0
        while index < len(names):
            dentry = self._dentry_fresh(current, names[index])
            if dentry is None:
                break
            current = dentry.ino
            index += 1
        remaining = list(names[index:])
        if not remaining:
            return current
        reply = yield from self._call(
            p.COMPOUND, dir=current, names=remaining,
            access_checks=self.params.access_check_per_component,
        )
        for entry in reply.body["resolved"]:
            self._cache_dentry(current, entry["name"], entry["ino"],
                               entry["type"])
            if self.params.access_check_per_component:
                self._access_cache[current] = self.sim.now
            current = entry["ino"]
        return current

    def _walk_dirs(self, path: str, _depth: int = 0,
                   revalidate: bool = False) -> Generator:
        """Coroutine: resolve to ``(parent_ino, final_name)``.

        With ``revalidate`` every cached component is re-checked with a
        GETATTR even when fresh — the behavior of the second path walk in
        two-path operations (link/rename), whose dentries the kernel
        re-verifies.
        """
        if _depth > MAX_SYMLINK_DEPTH:
            raise InvalidArgument("too many levels of symbolic links")
        start, parts = self._split(path)
        if not parts:
            raise InvalidArgument("path %r has no final component" % path)
        current = start
        if self.params.compound_rpcs and len(parts) > 1:
            current = yield from self._compound_walk(current, parts[:-1])
            yield from self._v4_access_check(current)
            return current, parts[-1]
        for name in parts[:-1]:
            yield from self._v4_access_check(current)
            if revalidate and not self.params.consistent_metadata_cache:
                dentry = self._dentry_fresh(current, name)
                if dentry is not None:
                    yield from self._getattr(dentry.ino)
            ino = yield from self._lookup(current, name)
            if ino in self._symlink_inos:
                target = yield from self._symlink_target(ino)
                rest = "/".join(parts[parts.index(name) + 1:])
                sub = yield from self._walk_dirs(
                    target + "/" + rest, _depth + 1, revalidate
                )
                return sub
            current = ino
        yield from self._v4_access_check(current)
        return current, parts[-1]

    def _resolve(self, path: str, follow: bool = True, _depth: int = 0,
                 allow_stale: bool = False) -> Generator:
        """Coroutine: resolve a full path to an inode number."""
        if _depth > MAX_SYMLINK_DEPTH:
            raise InvalidArgument("too many levels of symbolic links")
        start, parts = self._split(path)
        if not parts:
            return start
        parent, name = yield from self._walk_dirs(path, _depth)
        ino = yield from self._lookup(parent, name, allow_stale=allow_stale)
        if follow and ino in self._symlink_inos:
            target = yield from self._symlink_target(ino)
            ino = yield from self._resolve(target, follow, _depth + 1)
        return ino

    def _revalidate_target(self, ino: int, came_from_cache: bool) -> Generator:
        """v2/v3 close-to-open check on an operation's final target."""
        if self.params.version >= 4 or self.params.consistent_metadata_cache:
            return None
        if came_from_cache:
            yield from self._getattr(ino)
        return None

    def _final_lookup(self, parent: int, name: str) -> Generator:
        """Resolve the op's target, reporting whether the cache served it."""
        cached = self._dentry_fresh(parent, name) is not None
        ino = yield from self._lookup(parent, name)
        return ino, cached

    # ======================================================================
    # directory syscalls
    # ======================================================================

    def mkdir(self, path: str, mode: int = 0o755) -> Generator:
        """Coroutine: create a directory at ``path``."""
        parent, name = yield from self._walk_dirs(path)
        yield from self._maybe_acquire_deleg(parent)
        if self._delegated(parent):
            self._deleg_create(parent, name, FileType.DIRECTORY, mode)
            return None
        yield from self._ensure_absent(parent, name)
        try:
            reply = yield from self._call(p.MKDIR, dir=parent, name=name,
                                          mode=mode)
            ino = reply.body["ino"]
        except FileExists as error:
            if not getattr(error, "replayed", False):
                raise
            # Replayed MKDIR whose first reply was lost: the directory
            # exists because the first execution made it.
            ino, _cached = yield from self._final_lookup(parent, name)
        self._cache_dentry(parent, name, ino, FileType.DIRECTORY)
        self._dir_contents.pop(parent, None)
        if self.params.version == 2:
            pass  # v2 MKDIR carries attributes already
        if self.params.version >= 4:
            yield from self._getattr(ino)
        return None

    def rmdir(self, path: str) -> Generator:
        """Coroutine: remove the empty directory at ``path``."""
        parent, name = yield from self._walk_dirs(path)
        yield from self._maybe_acquire_deleg(parent)
        if self._delegated(parent):
            ino, _ = yield from self._final_lookup(parent, name)
            self._deleg_remove(parent, name, ino, is_dir=True)
            return None
        ino, cached = yield from self._final_lookup(parent, name)
        yield from self._revalidate_target(ino, cached)
        try:
            yield from self._call(p.RMDIR, dir=parent, name=name)
        except FileNotFound as error:
            if not getattr(error, "replayed", False):
                raise
            # Replayed RMDIR: the first execution already removed it.
        self._forget(parent, name, ino)
        if self.params.version >= 4:
            yield from self._getattr(parent)
        return None

    def chdir(self, path: str) -> Generator:
        """Coroutine: change the working directory to ``path``."""
        parent, name = yield from self._walk_dirs(path)
        ino, cached = yield from self._final_lookup(parent, name)
        yield from self._revalidate_target(ino, cached)
        yield from self._v4_access_check(ino)   # entering the directory
        attrs = self._attrs.get(ino)
        if attrs is not None and attrs.data["type"] != FileType.DIRECTORY:
            raise NotADirectory(path)
        self.cwd_ino = ino
        return None

    def readdir(self, path: str) -> Generator:
        """Coroutine: list the names in the directory at ``path``."""
        ino = yield from self._resolve(path)
        if self.params.directory_delegation and (
            self._deleg_records or ino in self._deleg_unreplayed
        ):
            # The authoritative listing needs our pending updates applied.
            yield from self._flush_deleg_records()
        yield from self._v4_access_check(ino)   # reading the directory
        cached = self._dir_contents.get(ino)
        if cached is not None:
            fresh = (
                self.params.consistent_metadata_cache
                or self.params.version >= 4
                and self.sim.now - cached.cached_at < self.params.attr_cache_validity
            )
            if fresh:
                return list(cached.names)
            if self.params.version < 4:
                # Consistency check: is the cached listing still current?
                attrs = yield from self._getattr(ino)
                entry = self._dir_contents.get(ino)
                if entry is not None and attrs["mtime"] <= entry.cached_at:
                    entry.cached_at = self.sim.now
                    return list(entry.names)
        reply = yield from self._call(p.READDIR, ino=ino)
        names = reply.body["names"]
        self._dir_contents[ino] = _DirCache(list(names), self.sim.now)
        return list(names)

    def symlink(self, target: str, path: str) -> Generator:
        """Coroutine: create a symbolic link ``path`` -> ``target``."""
        parent, name = yield from self._walk_dirs(path)
        yield from self._ensure_absent(parent, name)
        yield from self._ensure_replayed(parent)
        reply = yield from self._call(p.SYMLINK, dir=parent, name=name, target=target)
        ino = reply.body["ino"]
        self._cache_dentry(parent, name, ino, FileType.SYMLINK)
        self._symlinks[ino] = target
        self._dir_contents.pop(parent, None)
        if self.params.version == 2:
            yield from self._getattr(ino)   # v2 SYMLINK reply has no attrs
        if self.params.version >= 4:
            yield from self._getattr(ino)
        return None

    def readlink(self, path: str) -> Generator:
        """Coroutine: return the target of the symlink at ``path``."""
        parent, name = yield from self._walk_dirs(path)
        # v2 trusts a stale symlink dentry; v3+ revalidates it first.
        ino = yield from self._lookup(
            parent, name, allow_stale=self.params.version == 2
        )
        if self.params.consistent_metadata_cache and ino in self._symlinks:
            return self._symlinks[ino]
        reply = yield from self._call(p.READLINK, ino=ino)
        self._symlinks[ino] = reply.body["target"]
        return reply.body["target"]

    # ======================================================================
    # file syscalls
    # ======================================================================

    def creat(self, path: str, mode: int = 0o644) -> Generator:
        """Coroutine: create/truncate a file; returns a descriptor."""
        fd = yield from self.open(path, O_WRONLY | O_CREAT | O_TRUNC, mode)
        return fd

    def open(self, path: str, flags: int = O_RDONLY, mode: int = 0o644) -> Generator:
        """Coroutine: open ``path`` (O_CREAT/O_TRUNC honored); returns a descriptor."""
        parent, name = yield from self._walk_dirs(path)
        created = False
        if flags & O_CREAT:
            yield from self._maybe_acquire_deleg(parent)
        if self._delegated(parent) and flags & O_CREAT:
            existing = self._dentry_fresh(parent, name)
            if existing is None:
                ino = self._deleg_create(parent, name, FileType.REGULAR, mode)
                created = True
            else:
                ino = existing.ino
        else:
            try:
                ino, _cached = yield from self._final_lookup(parent, name)
            except FileNotFound:
                if not flags & O_CREAT:
                    raise
                try:
                    reply = yield from self._call(
                        p.CREATE, dir=parent, name=name, mode=mode
                    )
                    ino = reply.body["ino"]
                except FileExists as error:
                    if not getattr(error, "replayed", False):
                        raise
                    # Replayed CREATE whose first reply was lost: fall
                    # back to LOOKUP, like Linux for non-exclusive opens.
                    ino, _cached = yield from self._final_lookup(
                        parent, name)
                self._cache_dentry(parent, name, ino)
                self._dir_contents.pop(parent, None)
                created = True
            if ino in self._symlink_inos:
                ino = yield from self._resolve(path)
        if self.params.version >= 4 and not self._delegated(parent):
            yield from self._v4_open_ceremony(ino, created)
        elif not self.params.consistent_metadata_cache:
            # close-to-open: revalidate attributes at open time (folds
            # into a revalidation the walk already performed).
            if not self._just_revalidated(ino):
                yield from self._getattr(ino)
        if flags & O_TRUNC and not created:
            yield from self._truncate_ino(ino, 0)
        fd = self._next_fd
        self._next_fd += 1
        self._fds[fd] = _OpenFile(ino, flags)
        return fd

    def _v4_open_ceremony(self, ino: int, created: bool) -> Generator:
        yield from self._call(p.OPEN, ino=ino, create=created)
        if ino not in self._confirmed_opens:
            yield from self._call(p.OPEN_CONFIRM, ino=ino)
            self._confirmed_opens.add(ino)
        yield from self._call(p.ACCESS, ino=ino, want=4)
        yield from self._getattr(ino)
        if created:
            yield from self._call(p.SETATTR, ino=ino, mode=None)
        if self.params.file_delegation:
            self._delegated_files.add(ino)
        self._ceremonied_opens.add(ino)
        return None

    def close(self, fd: int) -> Generator:
        """Coroutine: release the descriptor (close-to-open semantics apply)."""
        handle = self._fds.pop(fd, None)
        if handle is None:
            raise InvalidArgument("bad fd %d" % fd)
        ino = handle.ino
        dirty = self._pages.dirty_pages(ino) or self._wb_inflight_by_ino.get(ino)
        if dirty and not self.params.directory_delegation:
            # close-to-open consistency: close waits for the dirty data to
            # reach the server (plus a COMMIT for unstable writes).  Under
            # directory delegation (Section 7) the file is unshared and the
            # flush stays lazy, like ext3 over iSCSI.
            yield from self.flush_file(ino)
        if self.params.version >= 4 and ino in self._ceremonied_opens:
            self._ceremonied_opens.discard(ino)
            try:
                yield from self._call(p.CLOSE, ino=ino)
            except FileNotFound:
                pass
        return None

    def unlink(self, path: str) -> Generator:
        """Coroutine: remove the file at ``path``."""
        parent, name = yield from self._walk_dirs(path)
        yield from self._maybe_acquire_deleg(parent)
        if self._delegated(parent):
            ino, _ = yield from self._final_lookup(parent, name)
            self._deleg_remove(parent, name, ino, is_dir=False)
            return None
        ino, cached = yield from self._final_lookup(parent, name)
        yield from self._revalidate_target(ino, cached)
        try:
            yield from self._call(p.REMOVE, dir=parent, name=name)
        except FileNotFound as error:
            if not getattr(error, "replayed", False):
                raise
            # Replayed REMOVE: the first execution already unlinked it.
        self._forget(parent, name, ino)
        if self.params.version >= 4:
            yield from self._getattr(parent)
        return None

    def link(self, existing: str, new: str) -> Generator:
        """Coroutine: hard-link ``existing`` as ``new``."""
        target = yield from self._resolve(existing)
        parent, name = yield from self._walk_dirs(new, revalidate=True)
        yield from self._ensure_absent(parent, name)
        yield from self._ensure_replayed(target)
        yield from self._call(p.LINK, dir=parent, name=name, target=target)
        self._cache_dentry(parent, name, target)
        self._dir_contents.pop(parent, None)
        yield from self._getattr(target)   # refresh nlink
        return None

    def rename(self, old: str, new: str) -> Generator:
        """Coroutine: atomically rename ``old`` to ``new``."""
        src_parent, src_name = yield from self._walk_dirs(old)
        ino, cached = yield from self._final_lookup(src_parent, src_name)
        yield from self._revalidate_target(ino, cached)
        dst_parent, dst_name = yield from self._walk_dirs(new, revalidate=True)
        try:
            yield from self._lookup(dst_parent, dst_name)  # replace target?
        except FileNotFound:
            pass
        yield from self._ensure_replayed(ino)
        try:
            yield from self._call(
                p.RENAME,
                src_dir=src_parent, src_name=src_name,
                dst_dir=dst_parent, dst_name=dst_name,
            )
        except FileNotFound as error:
            if not getattr(error, "replayed", False):
                raise
            # Replayed RENAME: the first execution already moved it.
        self._drop_dentry(src_parent, src_name)
        self._cache_dentry(dst_parent, dst_name, ino)
        self._dir_contents.pop(src_parent, None)
        self._dir_contents.pop(dst_parent, None)
        if self.params.version == 2:
            yield from self._getattr(ino)   # v2 RENAME reply carries nothing
        if self.params.version >= 4:
            yield from self._getattr(dst_parent)
        return None

    def truncate(self, path: str, size: int) -> Generator:
        """Coroutine: set the file at ``path`` to ``size`` bytes."""
        ino = yield from self._resolve(path)
        if not self._just_revalidated(ino) and not (
            self.params.consistent_metadata_cache
            and self._attrs_fresh(ino) is not None
        ):
            yield from self._getattr(ino)    # fetch current size first
        if self.params.version >= 4 and not self._deleg_covers(ino):
            # The v4 client truncates through a stateful open.
            yield from self._v4_open_ceremony(ino, created=False)
            yield from self._truncate_ino(ino, size)
            self._ceremonied_opens.discard(ino)
            yield from self._call(p.CLOSE, ino=ino)
            return None
        yield from self._truncate_ino(ino, size)
        return None

    def _truncate_ino(self, ino: int, size: int) -> Generator:
        yield from self._ensure_replayed(ino)
        yield from self._call(p.SETATTR, ino=ino, size=size)
        self._pages.invalidate_file(ino)
        self._dirty_size.pop(ino, None)
        return None

    def chmod(self, path: str, mode: int) -> Generator:
        """Coroutine: change the mode bits of ``path``."""
        ino = yield from self._resolve(path)
        if not self._just_revalidated(ino) and not (
            self.params.consistent_metadata_cache
            and self._attrs_fresh(ino) is not None
        ):
            yield from self._getattr(ino)    # the stat-before-chmod pattern
        if self._deleg_covers(ino):
            self._deleg_setattr(ino, mode=mode)
            return None
        yield from self._call(p.SETATTR, ino=ino, mode=mode)
        if self.params.version >= 4:
            yield from self._getattr(ino)
        return None

    def chown(self, path: str, uid: int, gid: int = 0) -> Generator:
        """Coroutine: change the ownership of ``path``."""
        ino = yield from self._resolve(path)
        if not self._just_revalidated(ino) and not (
            self.params.consistent_metadata_cache
            and self._attrs_fresh(ino) is not None
        ):
            yield from self._getattr(ino)
        if self._deleg_covers(ino):
            self._deleg_setattr(ino, uid=uid, gid=gid)
            return None
        yield from self._call(p.SETATTR, ino=ino, uid=uid, gid=gid)
        if self.params.version >= 4:
            yield from self._getattr(ino)
        return None

    def access(self, path: str, want: int = 4) -> Generator:
        """Coroutine: permission check on ``path``; returns a boolean."""
        parent, name = yield from self._walk_dirs(path)
        ino = yield from self._lookup(parent, name, allow_stale=True)
        if self.params.consistent_metadata_cache:
            return True
        if self.params.version >= 3:
            # The ACCESS exchange doubles as the consistency check (its
            # reply carries fresh attributes).
            yield from self._call(p.ACCESS, ino=ino, want=want)
        else:
            yield from self._getattr(ino)
        return True

    def stat(self, path: str) -> Generator:
        """Coroutine: return the file attributes of ``path``."""
        ino = yield from self._resolve(path)
        if self.params.consistent_metadata_cache and self._attrs_fresh(ino) is not None:
            return self._attrs_to_struct(self._attrs[ino].data)
        # The stat(1) pattern is lstat + stat: the inode is revalidated
        # twice (once per call); a revalidation done during the walk
        # counts as the first.
        if not self._just_revalidated(ino):
            yield from self._getattr(ino)
        attrs = yield from self._getattr(ino)
        return self._attrs_to_struct(attrs)

    def utime(self, path: str, atime: Optional[float] = None,
              mtime: Optional[float] = None) -> Generator:
        """Coroutine: set access/modification times of ``path``."""
        ino = yield from self._resolve(path, allow_stale=True)
        now = self.sim.now
        atime = atime if atime is not None else now
        mtime = mtime if mtime is not None else now
        if self._deleg_covers(ino):
            self._deleg_setattr(ino, atime=atime, mtime=mtime)
            return None
        yield from self._call(p.SETATTR, ino=ino, atime=atime, mtime=mtime)
        if self.params.version >= 4:
            yield from self._getattr(ino)
        return None

    # ======================================================================
    # data path
    # ======================================================================

    def read(self, fd: int, size: int) -> Generator:
        """Coroutine: read up to ``size`` bytes at the descriptor's offset."""
        handle = self._handle(fd)
        done = yield from self._read_ino(handle.ino, handle.offset, size)
        handle.offset += done
        return done

    def pread(self, fd: int, size: int, offset: int) -> Generator:
        """Coroutine: read ``size`` bytes at an explicit ``offset``."""
        handle = self._handle(fd)
        done = yield from self._read_ino(handle.ino, offset, size)
        return done

    def _read_ino(self, ino: int, offset: int, size: int) -> Generator:
        attrs = yield from self._revalidate_data(ino)
        file_size = attrs["size"]
        if offset >= file_size:
            return 0
        size = min(size, file_size - offset)
        if size <= 0:
            return 0
        first = offset // PAGE_SIZE
        last = (offset + size - 1) // PAGE_SIZE
        now = self.sim.now
        missing: List[int] = []
        awaited: List[Event] = []
        for index in range(first, last + 1):
            inflight = self._inflight_pages.get((ino, index))
            if inflight is not None:
                awaited.append(inflight)
                continue
            page = self._pages.lookup(ino, index)
            verified = max(
                page.filled_at if page is not None else -1.0,
                self._data_verified_at.get(ino, -1.0),
            )
            if page is None or (
                now - verified > self.params.data_cache_validity
                and not page.dirty
            ):
                missing.append(index)
        if self.tracer.enabled:
            self.tracer.instant(
                "pagecache." + ("hit" if not missing else "miss"),
                cat="cache", track="client", ino=ino,
                hits=(last - first + 1) - len(missing), misses=len(missing),
            )
        rsize_pages = max(1, self.params.rsize // PAGE_SIZE)
        for run_start, run_len in _index_runs(missing):
            at = run_start
            remaining = run_len
            while remaining > 0:
                chunk = min(remaining, rsize_pages)
                count = min(chunk * PAGE_SIZE, file_size - at * PAGE_SIZE)
                if count <= 0:
                    break
                yield from self._call(
                    p.READ, ino=ino, offset=at * PAGE_SIZE, count=count
                )
                for index in range(at, at + chunk):
                    self._pages.insert(ino, index, now)
                at += chunk
                remaining -= chunk
        for gate in awaited:
            if not gate.triggered:
                yield gate
        self._maybe_readahead(ino, first, last, file_size)
        return size

    def _revalidate_data(self, ino: int) -> Generator:
        """Attribute-based data-cache consistency check (3 s window)."""
        cached = self._attrs.get(ino)
        if ino in self._delegated_files or self.params.consistent_metadata_cache:
            if cached is not None:
                return cached.data
        had_mtime = cached.data["mtime"] if cached is not None else None
        attrs = yield from self._revalidate_attrs(ino)
        if had_mtime is not None and attrs["mtime"] > had_mtime:
            self._pages.invalidate_file(ino)
            self._dir_contents.pop(ino, None)
        # An unchanged mtime re-certifies every cached page of the file.
        self._data_verified_at[ino] = self.sim.now
        return attrs

    def _maybe_readahead(self, ino: int, first: int, last: int, file_size: int) -> None:
        if self.readahead_pages <= 0:
            return
        previous = self._last_read_page.get(ino)
        self._last_read_page[ino] = last
        if previous is None or first != previous + 1:
            return
        max_page = (file_size - 1) // PAGE_SIZE if file_size else 0
        for index in range(last + 1, min(last + self.readahead_pages, max_page) + 1):
            key = (ino, index)
            if self._pages.peek(ino, index) is not None or key in self._inflight_pages:
                continue
            self._inflight_pages[key] = self.sim.event()
            self.sim.spawn(
                self._prefetch_page(ino, index),
                name=self.name + ".readahead",
            )

    def _prefetch_page(self, ino: int, index: int) -> Generator:
        try:
            yield from self._call(
                p.READ, ino=ino, offset=index * PAGE_SIZE, count=PAGE_SIZE
            )
            self._pages.insert(ino, index, self.sim.now)
        except FileNotFound:
            pass  # racing unlink
        finally:
            gate = self._inflight_pages.pop((ino, index), None)
            if gate is not None and not gate.triggered:
                gate.trigger()
        return None

    def write(self, fd: int, size: int) -> Generator:
        """Coroutine: write ``size`` bytes at the descriptor's offset."""
        handle = self._handle(fd)
        done = yield from self._write_ino(handle.ino, handle.offset, size)
        handle.offset += done
        return done

    def pwrite(self, fd: int, size: int, offset: int) -> Generator:
        """Coroutine: write ``size`` bytes at an explicit ``offset``."""
        handle = self._handle(fd)
        done = yield from self._write_ino(handle.ino, offset, size)
        return done

    def _write_ino(self, ino: int, offset: int, size: int) -> Generator:
        if size <= 0:
            return 0
        first = offset // PAGE_SIZE
        last = (offset + size - 1) // PAGE_SIZE
        now = self.sim.now
        if not self.params.async_writes:
            # NFS v2: write-through, one synchronous WRITE per wsize chunk.
            wsize = self.params.wsize
            sent = 0
            while sent < size:
                chunk = min(wsize, size - sent)
                yield from self._call(
                    p.WRITE, payload_bytes=chunk,
                    ino=ino, offset=offset + sent, count=chunk, stable=True,
                )
                sent += chunk
            for index in range(first, last + 1):
                self._pages.insert(ino, index, now)
            self._bump_size(ino, offset + size)
            return size
        for index in range(first, last + 1):
            self._pages.insert(ino, index, now, dirty=True)
            self._wb_enqueue(ino, index)
        self._bump_size(ino, offset + size)
        yield from self._wb_throttle()
        return size

    def _bump_size(self, ino: int, new_end: int) -> None:
        if self._dirty_size.get(ino, -1) < new_end:
            self._dirty_size[ino] = new_end
        entry = self._attrs.get(ino)
        if entry is not None and entry.data["size"] < new_end:
            entry.data["size"] = new_end
            entry.data["mtime"] = self.sim.now

    def lseek(self, fd: int, offset: int) -> None:
        """Reposition the descriptor's offset."""
        self._handle(fd).offset = offset

    def fstat(self, fd: int) -> Generator:
        """Coroutine: return the open file's attributes."""
        handle = self._handle(fd)
        attrs = yield from self._revalidate_attrs(handle.ino)
        return self._attrs_to_struct(attrs)

    def fsync(self, fd: int) -> Generator:
        """Coroutine: force the file's data and meta-data to stable storage."""
        handle = self._handle(fd)
        yield from self.flush_file(handle.ino)
        return None

    # ======================================================================
    # write-back machinery
    # ======================================================================

    @property
    def _wb_limit(self) -> int:
        return max(1, self.params.max_pending_writes)

    @property
    def _wb_backlog_limit(self) -> int:
        return self._wb_limit * 4

    def _wb_enqueue(self, ino: int, index: int) -> None:
        key = (ino, index)
        if key not in self._wb_queue:
            self._wb_queue[key] = self.sim.now
        self._kick_wb()

    def _kick_wb(self) -> None:
        if not self._wb_kick.triggered:
            self._wb_kick.trigger()

    def _wb_throttle(self) -> Generator:
        """Stall the writer while the dirty backlog exceeds the bound.

        This is the pseudo-synchronous behavior of Section 4.5: beyond the
        pending-write limit, application writes proceed only as fast as
        WRITE RPCs complete.
        """
        while len(self._wb_queue) + self._wb_inflight > self._wb_backlog_limit:
            for ino, _index in list(self._wb_queue)[: self._wb_limit]:
                self._wb_forced.add(ino)
            self._kick_wb()
            gate = self.sim.event()
            self._wb_drain_waiters.append((None, gate))
            yield gate
        return None

    def _writeback_loop(self) -> Generator:
        wsize_pages = max(1, getattr(self.params, "pages_per_flush_rpc", 1))
        while True:
            if not self._wb_queue:
                self._wb_kick = self.sim.event()
                yield self._wb_kick
                continue
            # Forced inos (fsync/close/throttle) jump the aging queue.
            (ino, index), queued_at = next(iter(self._wb_queue.items()))
            if self._wb_forced and ino not in self._wb_forced:
                for key in self._wb_queue:
                    if key[0] in self._wb_forced:
                        ino, index = key
                        queued_at = self._wb_queue[key]
                        break
            age = self.sim.now - queued_at
            if ino not in self._wb_forced and age < self.writeback_delay:
                # Sleep until the head page matures — but wake early when
                # someone forces a flush.  The floor keeps float rounding
                # from producing a zero-length (livelocking) timeout.
                self._wb_kick = self.sim.event()
                timer = self.sim.timeout(max(self.writeback_delay - age, 1e-6))
                yield self.sim.any_of([timer, self._wb_kick])
                continue
            if ino in self._deleg_unreplayed:
                # The file's create has not been replayed yet: ship the
                # pending meta-data batch first, then re-read the queue —
                # the file may have been deleted while we yielded.
                yield from self._flush_deleg_records()
                continue
            # Merge adjacent queued pages of the same file, up to wsize.
            pages = [index]
            del self._wb_queue[(ino, index)]
            while len(pages) < wsize_pages and (ino, pages[-1] + 1) in self._wb_queue:
                pages.append(pages[-1] + 1)
                del self._wb_queue[(ino, pages[-1])]
            while self._wb_inflight >= self._wb_limit:
                gate = self.sim.event()
                self._wb_drain_waiters.append((None, gate))
                yield gate
            self._wb_inflight += 1
            self._wb_inflight_by_ino[ino] = self._wb_inflight_by_ino.get(ino, 0) + 1
            self.sim.spawn(self._write_rpc(ino, pages), name=self.name + ".write")

    def _write_rpc(self, ino: int, pages: List[int]) -> Generator:
        size = len(pages) * PAGE_SIZE
        # The final page is partial: clamp the WRITE to the local EOF so
        # the server's size matches the application's.
        eof = self._dirty_size.get(ino)
        if eof is None:
            entry = self._attrs.get(ino)
            eof = entry.data["size"] if entry is not None else None
        if eof is not None:
            size = max(0, min(size, eof - pages[0] * PAGE_SIZE))
        if size == 0:
            size = PAGE_SIZE  # stale page beyond a truncate; keep it simple
        try:
            try:
                yield from self._call(
                    p.WRITE, payload_bytes=size,
                    ino=ino, offset=pages[0] * PAGE_SIZE, count=size, stable=False,
                )
                self._uncommitted.add(ino)
            except FileNotFound:
                pass  # the file was removed while its write-back was queued
        finally:
            for index in pages:
                self._pages.mark_clean(ino, index)
            self._wb_inflight -= 1
            remaining = self._wb_inflight_by_ino.get(ino, 1) - 1
            if remaining:
                self._wb_inflight_by_ino[ino] = remaining
            else:
                self._wb_inflight_by_ino.pop(ino, None)
                if not self._pages.dirty_pages(ino):
                    self._wb_forced.discard(ino)
            self._wake_wb_waiters(ino)
        return None

    def _wake_wb_waiters(self, ino: int) -> None:
        still_waiting = []
        for waited_ino, gate in self._wb_drain_waiters:
            if waited_ino is None or self._ino_quiet(waited_ino):
                gate.trigger()
            else:
                still_waiting.append((waited_ino, gate))
        self._wb_drain_waiters = still_waiting

    def _ino_quiet(self, ino: int) -> bool:
        if self._wb_inflight_by_ino.get(ino):
            return False
        return not any(key[0] == ino for key in self._wb_queue)

    def _force_flush(self, ino: int) -> None:
        self._wb_forced.add(ino)
        self._kick_wb()
        self.sim.spawn(self._commit_after_drain(ino), name=self.name + ".commit")

    def _commit_after_drain(self, ino: int) -> Generator:
        yield from self._wait_ino_quiet(ino)
        if ino in self._uncommitted and self.params.version >= 3:
            self._uncommitted.discard(ino)
            try:
                yield from self._call(p.COMMIT, ino=ino)
            except FileNotFound:
                pass  # the file was removed while its commit was queued
        return None

    def _wait_ino_quiet(self, ino: int) -> Generator:
        while not self._ino_quiet(ino):
            gate = self.sim.event()
            self._wb_drain_waiters.append((ino, gate))
            yield gate
        return None

    def flush_file(self, ino: int) -> Generator:
        """Coroutine: synchronously push the file's dirty pages + COMMIT."""
        self._wb_forced.add(ino)
        self._kick_wb()
        yield from self._wait_ino_quiet(ino)
        if ino in self._uncommitted and self.params.version >= 3 \
                and not self.params.directory_delegation:
            self._uncommitted.discard(ino)
            yield from self._call(p.COMMIT, ino=ino)
        return None

    def quiesce(self) -> Generator:
        """Coroutine: settle all asynchronous client state."""
        yield from self._flush_deleg_records()
        for key in list(self._wb_queue):
            self._wb_forced.add(key[0])
        self._kick_wb()
        while self._wb_queue or self._wb_inflight:
            gate = self.sim.event()
            self._wb_drain_waiters.append((None, gate))
            yield gate
        if not self.params.directory_delegation:
            for ino in sorted(self._uncommitted):
                try:
                    yield from self._call(p.COMMIT, ino=ino)
                except FileNotFound:
                    pass
        self._uncommitted.clear()
        return None

    def drop_caches(self) -> Generator:
        """Coroutine: drain and drop caches but keep open file handles."""
        yield from self.quiesce()
        self._dentries.clear()
        self._attrs.clear()
        self._dir_contents.clear()
        self._access_cache.clear()
        self._symlinks.clear()
        self._symlink_inos.clear()
        self._delegated_files.clear()
        self._pages.clear()
        self._last_read_page.clear()
        self._dirty_size.clear()
        self._data_verified_at.clear()
        return None

    def remount_cold(self) -> Generator:
        """Coroutine: the cold-cache protocol — drain, then drop all caches."""
        yield from self.quiesce()
        self._dentries.clear()
        self._attrs.clear()
        self._dir_contents.clear()
        self._access_cache.clear()
        self._symlinks.clear()
        self._symlink_inos.clear()
        self._confirmed_opens.clear()
        self._delegated_files.clear()
        self._pages.clear()
        self._last_read_page.clear()
        self._dirty_size.clear()
        self._data_verified_at.clear()
        self.cwd_ino = ROOT_INO
        self._fds.clear()
        return None

    # ======================================================================
    # Section-7: directory delegation
    # ======================================================================

    def acquire_directory_delegation(self, path: str) -> Generator:
        """Coroutine: obtain a delegation (and ino grant) for ``path``."""
        if not self.params.directory_delegation:
            raise InvalidArgument("directory delegation is disabled")
        ino = yield from self._resolve(path)
        reply = yield from self._call(p.DELEGDIR, ino=ino, reserve=4096)
        if not reply.body.get("granted"):
            return False
        lo, hi = reply.body["ino_range"]
        self._deleg_ino_pool.extend(range(lo, hi + 1))
        self._deleg_dirs.add(ino)
        return True

    def _ensure_replayed(self, ino: int) -> Generator:
        """Flush pending delegated records before a server op that needs
        the object (or the namespace around it) to exist remotely."""
        if self.params.directory_delegation and (
            self._deleg_records or ino in self._deleg_unreplayed
        ):
            yield from self._flush_deleg_records()
        return None

    def _maybe_acquire_deleg(self, dir_ino: int) -> Generator:
        """Auto-acquire a delegation on first mutation under a directory."""
        if not self.params.directory_delegation:
            return None
        if self._delegated(dir_ino):
            yield from self._ensure_deleg_inos(dir_ino)
            return None
        reply = yield from self._call(p.DELEGDIR, ino=dir_ino, reserve=4096)
        if reply.body.get("granted"):
            lo, hi = reply.body["ino_range"]
            self._deleg_ino_pool.extend(range(lo, hi + 1))
            self._deleg_dirs.add(dir_ino)
        return None

    def _ensure_deleg_inos(self, dir_ino: int) -> Generator:
        """Renew the inode grant before the pool runs dry."""
        if len(self._deleg_ino_pool) >= 8:
            return None
        reply = yield from self._call(p.DELEGDIR, ino=dir_ino, reserve=4096)
        if reply.body.get("granted"):
            lo, hi = reply.body["ino_range"]
            self._deleg_ino_pool.extend(range(lo, hi + 1))
        return None

    def _delegated(self, dir_ino: int) -> bool:
        return dir_ino in self._deleg_dirs

    def _deleg_covers(self, ino: int) -> bool:
        """True when the object was created under one of our delegations."""
        return ino in self._deleg_unreplayed

    def _deleg_create(self, parent: int, name: str, itype: str, mode: int) -> int:
        if not self._deleg_ino_pool:
            raise InvalidArgument("delegation inode grant exhausted")
        ino = self._deleg_ino_pool.pop()
        now = self.sim.now
        self._cache_dentry(parent, name, ino, itype)
        self._cache_attrs({
            "ino": ino, "type": itype, "mode": mode, "uid": 0, "gid": 0,
            "nlink": 2 if itype == FileType.DIRECTORY else 1, "size": 0,
            "atime": now, "mtime": now, "ctime": now, "generation": 0,
        })
        self._dir_contents.pop(parent, None)
        kind = "mkdir" if itype == FileType.DIRECTORY else "create"
        self._deleg_records.append(
            {"kind": kind, "dir": parent, "name": name, "mode": mode, "ino": ino}
        )
        self._deleg_unreplayed.add(ino)
        if itype == FileType.DIRECTORY:
            self._deleg_dirs.add(ino)   # delegation covers the subtree
        return ino

    def _deleg_remove(self, parent: int, name: str, ino: int, is_dir: bool) -> None:
        queued = ino in self._deleg_unreplayed and ino not in self._deleg_inflight
        if queued:
            # Created and destroyed within one window, with the create
            # still queued: both ends cancel — the file-access analogue of
            # ext3 absorbing short-lived files.
            self._deleg_records = [
                r for r in self._deleg_records if r.get("ino") != ino
            ]
            self._deleg_unreplayed.discard(ino)
            self._deleg_dirs.discard(ino)
            # Drop any pending data for the doomed file.
            for key in [k for k in self._wb_queue if k[0] == ino]:
                del self._wb_queue[key]
            self._pages.invalidate_file(ino)
        else:
            # The create (if any) is already at the server or in flight —
            # batches apply in order, so a remove record is safe.
            self._deleg_records.append(
                {"kind": "rmdir" if is_dir else "remove", "dir": parent, "name": name}
            )
        self._forget(parent, name, ino)

    def _deleg_setattr(self, ino: int, **changes) -> None:
        record = {"kind": "setattr", "ino": ino}
        record.update(changes)
        self._deleg_records.append(record)
        entry = self._attrs.get(ino)
        if entry is not None:
            for key, value in changes.items():
                if value is not None:
                    entry.data[key] = value

    def _flush_deleg_records(self) -> Generator:
        # Serialize flushes: batches must apply in order (a remove may
        # reference a create shipped in the previous batch).
        while self._deleg_flush_gate is not None:
            yield self._deleg_flush_gate
        if not self._deleg_records:
            return None
        self._deleg_flush_gate = self.sim.event()
        records, self._deleg_records = self._deleg_records, []
        replayed = {r.get("ino") for r in records if r.get("ino") is not None}
        self._deleg_inflight.update(replayed)
        try:
            yield from self._call(
                p.DELEGUPDATE, payload_bytes=64 * len(records), records=records
            )
        finally:
            self._deleg_unreplayed.difference_update(replayed)
            self._deleg_inflight.difference_update(replayed)
            gate, self._deleg_flush_gate = self._deleg_flush_gate, None
            gate.trigger()
        return None

    def _deleg_flush_loop(self) -> Generator:
        """Replay delegated updates every journal-commit-like interval."""
        while True:
            yield self.sim.timeout(5.0)
            yield from self._flush_deleg_records()

    # ======================================================================
    # shared helpers
    # ======================================================================

    def _just_revalidated(self, ino: int) -> bool:
        """True if this op's walk already revalidated ``ino`` right now."""
        # The marker is (ino, clock-at-revalidation); "same instant" is
        # deliberately exact equality — any clock advance must invalidate.
        return self._revalidated == (ino, self.sim.now)  # simlint: disable=D104 -- same-instant marker; exact equality is the contract

    def _ensure_absent(self, parent: int, name: str) -> Generator:
        try:
            yield from self._lookup(parent, name)
        except FileNotFound:
            return None
        raise FileExists(name)

    def _forget(self, parent: int, name: str, ino: int) -> None:
        self._drop_dentry(parent, name)
        self._attrs.pop(ino, None)
        self._dirty_size.pop(ino, None)
        self._uncommitted.discard(ino)
        for key in [k for k in self._wb_queue if k[0] == ino]:
            del self._wb_queue[key]
        self._wake_wb_waiters(ino)
        self._dir_contents.pop(parent, None)
        self._dir_contents.pop(ino, None)
        self._symlinks.pop(ino, None)
        self._symlink_inos.discard(ino)
        self._pages.invalidate_file(ino)
        self._delegated_files.discard(ino)
        self._confirmed_opens.discard(ino)
        self._ceremonied_opens.discard(ino)

    def _handle(self, fd: int) -> _OpenFile:
        handle = self._fds.get(fd)
        if handle is None:
            raise InvalidArgument("bad fd %d" % fd)
        return handle

    @staticmethod
    def _attrs_to_struct(attrs: Dict) -> FileAttributes:
        return FileAttributes(
            ino=attrs["ino"], itype=attrs["type"], mode=attrs["mode"],
            uid=attrs["uid"], gid=attrs["gid"], nlink=attrs["nlink"],
            size=attrs["size"], atime=attrs["atime"], mtime=attrs["mtime"],
            ctime=attrs["ctime"],
        )


def _index_runs(indices: List[int]):
    """Yield (start, length) for contiguous runs of a sorted index list."""
    start = None
    length = 0
    for index in indices:
        if start is None:
            start, length = index, 1
        elif index == start + length:
            length += 1
        else:
            yield start, length
            start, length = index, 1
    if start is not None:
        yield start, length
