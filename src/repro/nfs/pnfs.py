"""pNFS-style export striping: a deterministic file-to-server layout.

The paper runs one NFS server; ROADMAP item 1 asks what happens when the
same contrast is run against a *farm* of exports.  This module supplies
the two pieces that turn ``nservers`` independent NFS servers into one
striped namespace:

* :class:`StripeLayout` — the layout function.  Whole-file layouts
  (export sharding): every path has exactly one home data server,
  computed as ``crc32(path) % nservers``.  CRC32 is process-stable —
  unlike the builtin ``hash()`` it never varies with ``PYTHONHASHSEED``
  — so the same file lands on the same server across runs, interpreter
  restarts, and ``--jobs`` worker processes.  That determinism is a
  tested contract (``tests/test_pnfs.py``).

* :class:`StripedNfsClient` — the client-side facade.  It owns one
  ordinary :class:`~repro.nfs.client.NfsClient` per data server and
  routes every file operation to the file's home server, after a
  one-time ``LAYOUTGET`` hop to the metadata server (server 0 by
  convention) that grants and caches the layout — the pNFS control/data
  separation in miniature.  Namespace mutations (``mkdir``/``rmdir``)
  fan out to every server so the directory skeleton is mirrored;
  ``readdir`` unions the per-server views back together.

Semantics deliberately kept honest rather than complete:

* a file's data and its directory entry live only on its home server;
* ``rename`` is supported only when old and new names share a home
  server (a cross-server rename would need a copy, which real pNFS
  also does not do for free);
* each per-server connection keeps its own attribute/page caches, as a
  real ``nconnect``-per-export mount stack would.
"""

from __future__ import annotations

import zlib
from typing import Dict, Generator, List, Optional, Tuple

from .client import NfsClient
from . import protocol as p

__all__ = ["StripeLayout", "StripedNfsClient"]


class StripeLayout:
    """Deterministic whole-file layout: ``crc32(path) % nservers``."""

    __slots__ = ("nservers",)

    def __init__(self, nservers: int):
        if nservers < 1:
            raise ValueError("a stripe layout needs nservers >= 1 (got %d)"
                             % (nservers,))
        self.nservers = nservers

    def server_for(self, path: str) -> int:
        """The home data server of ``path`` (stable across processes)."""
        return zlib.crc32(path.encode("utf-8")) % self.nservers

    def __repr__(self) -> str:
        return "StripeLayout(nservers=%d)" % (self.nservers,)


class StripedNfsClient:
    """One mount over ``nservers`` exports, routed by a stripe layout.

    ``clients[s]`` must be an :class:`NfsClient` wired to data server
    ``s``; ``clients[mds_index]`` doubles as the metadata server
    connection that answers ``LAYOUTGET``.  All methods are coroutines
    with the same shapes as ``NfsClient``'s, so workload code written
    against one client runs unmodified against the striped farm.
    """

    def __init__(self, sim, clients: List[NfsClient],
                 layout: Optional[StripeLayout] = None, mds_index: int = 0):
        if not clients:
            raise ValueError("a striped client needs at least one NfsClient")
        self.sim = sim
        self.clients = list(clients)
        self.layout = layout if layout is not None else StripeLayout(
            len(self.clients))
        if self.layout.nservers != len(self.clients):
            raise ValueError(
                "layout covers %d servers but %d clients were wired"
                % (self.layout.nservers, len(self.clients)))
        self.mds_index = mds_index
        # path -> granted home server; the one-RPC-per-first-touch cache.
        self._layouts: Dict[str, int] = {}
        self.layout_gets = 0
        # facade fd -> (server index, inner fd)
        self._fds: Dict[int, Tuple[int, int]] = {}
        self._next_fd = 3

    # -- layout plumbing -------------------------------------------------------

    @property
    def nservers(self) -> int:
        return len(self.clients)

    @property
    def layouts_cached(self) -> int:
        return len(self._layouts)

    def _home(self, path: str) -> Generator:
        """Coroutine: the home server of ``path``, granted by the MDS.

        First touch costs one LAYOUTGET round trip to the metadata
        server; the grant is cached for the life of the mount, exactly
        like a held pNFS layout.
        """
        cached = self._layouts.get(path)
        if cached is not None:
            return cached
        mds = self.clients[self.mds_index]
        reply = yield from mds._call(p.LAYOUTGET, path=path)
        self.layout_gets += 1
        home = reply.body["server"]
        self._layouts[path] = home
        return home

    def _at_home(self, path: str) -> Generator:
        home = yield from self._home(path)
        return self.clients[home]

    # -- namespace ops: mirrored directory skeleton ----------------------------

    def mkdir(self, path: str, mode: int = 0o755) -> Generator:
        """Create ``path`` on every server (mirrored namespace)."""
        result = None
        for client in self.clients:
            result = yield from client.mkdir(path, mode)
        return result

    def rmdir(self, path: str) -> Generator:
        """Remove the (mirrored) directory from every server."""
        result = None
        for client in self.clients:
            result = yield from client.rmdir(path)
        return result

    def readdir(self, path: str) -> Generator:
        """Union of the per-server directory views, sorted."""
        union = set()
        for client in self.clients:
            names = yield from client.readdir(path)
            union.update(names)
        return sorted(union)

    # -- file ops: routed to the home server -----------------------------------

    def creat(self, path: str, mode: int = 0o644) -> Generator:
        """Create ``path`` on its home server; return a facade fd."""
        client = yield from self._at_home(path)
        inner = yield from client.creat(path, mode)
        return self._wrap_fd(self._layouts[path], inner)

    def open(self, path: str, flags: int = 0, mode: int = 0o644) -> Generator:
        """Open ``path`` on its home server; return a facade fd."""
        client = yield from self._at_home(path)
        inner = yield from client.open(path, flags, mode)
        return self._wrap_fd(self._layouts[path], inner)

    def _wrap_fd(self, server: int, inner: int) -> int:
        fd = self._next_fd
        self._next_fd += 1
        self._fds[fd] = (server, inner)
        return fd

    def _route_fd(self, fd: int) -> Tuple[NfsClient, int]:
        try:
            server, inner = self._fds[fd]
        except KeyError:
            raise OSError("bad striped file descriptor %d" % (fd,))
        return self.clients[server], inner

    def close(self, fd: int) -> Generator:
        """Close the facade fd on its home server."""
        client, inner = self._route_fd(fd)
        result = yield from client.close(inner)
        del self._fds[fd]
        return result

    def read(self, fd: int, size: int) -> Generator:
        """Read ``size`` bytes at the fd's cursor (home server)."""
        client, inner = self._route_fd(fd)
        result = yield from client.read(inner, size)
        return result

    def write(self, fd: int, size: int) -> Generator:
        """Write ``size`` bytes at the fd's cursor (home server)."""
        client, inner = self._route_fd(fd)
        result = yield from client.write(inner, size)
        return result

    def pread(self, fd: int, size: int, offset: int) -> Generator:
        """Positional read on the fd's home server."""
        client, inner = self._route_fd(fd)
        result = yield from client.pread(inner, size, offset)
        return result

    def pwrite(self, fd: int, size: int, offset: int) -> Generator:
        """Positional write on the fd's home server."""
        client, inner = self._route_fd(fd)
        result = yield from client.pwrite(inner, size, offset)
        return result

    def fsync(self, fd: int) -> Generator:
        """Flush the file's dirty pages to its home server."""
        client, inner = self._route_fd(fd)
        result = yield from client.fsync(inner)
        return result

    def fstat(self, fd: int) -> Generator:
        """Attributes of the open file, from its home server."""
        client, inner = self._route_fd(fd)
        result = yield from client.fstat(inner)
        return result

    def lseek(self, fd: int, offset: int) -> None:
        """Move the inner fd's cursor (no wire traffic)."""
        client, inner = self._route_fd(fd)
        client.lseek(inner, offset)

    def stat(self, path: str) -> Generator:
        """Attributes of ``path``, from its home server."""
        client = yield from self._at_home(path)
        result = yield from client.stat(path)
        return result

    def access(self, path: str, want: int = 4) -> Generator:
        """Permission probe against the home server."""
        client = yield from self._at_home(path)
        result = yield from client.access(path, want)
        return result

    def chmod(self, path: str, mode: int) -> Generator:
        """Change mode on the home server."""
        client = yield from self._at_home(path)
        result = yield from client.chmod(path, mode)
        return result

    def truncate(self, path: str, size: int) -> Generator:
        """Truncate the file on its home server."""
        client = yield from self._at_home(path)
        result = yield from client.truncate(path, size)
        return result

    def unlink(self, path: str) -> Generator:
        """Remove the file from its home server; drop its layout."""
        client = yield from self._at_home(path)
        result = yield from client.unlink(path)
        self._layouts.pop(path, None)
        return result

    def rename(self, old: str, new: str) -> Generator:
        """Rename within one home server (cross-server raises)."""
        old_home = yield from self._home(old)
        new_home = yield from self._home(new)
        if old_home != new_home:
            raise ValueError(
                "cross-server rename (%r on server %d -> %r on server %d) "
                "needs a copy; striped renames must stay on one home server"
                % (old, old_home, new, new_home))
        result = yield from self.clients[old_home].rename(old, new)
        self._layouts.pop(old, None)
        return result

    # -- lifecycle -------------------------------------------------------------

    def quiesce(self) -> Generator:
        """Settle write-back on every per-server connection, in order."""
        for client in self.clients:
            yield from client.quiesce()
        return None

    def drop_caches(self) -> Generator:
        """Invalidate client caches on every connection."""
        for client in self.clients:
            yield from client.drop_caches()
        return None
