"""Client-host substrate: machines and the shared syscall surface."""

from .host import Host

__all__ = ["Host"]
