"""Host machines: CPUs with utilization accounting.

The testbed has two: a 1-CPU client and a 2-CPU server (the paper's 1 GHz
PIII client and dual-933 MHz PIII server).  Every protocol layer charges
its processing here, so the vmstat-style utilization figures of Tables 9
and 10 come from the same resource that creates CPU contention.
"""

from __future__ import annotations

from ..sim import Resource, Simulator

__all__ = ["Host"]


class Host:
    """One machine: a named multi-core CPU resource."""

    def __init__(self, sim: Simulator, cpus: int, name: str):
        self.sim = sim
        self.name = name
        self.cpu = Resource(sim, capacity=cpus, name=name + ".cpu")

    def reset_utilization_window(self) -> None:
        """Start a fresh measurement window (a vmstat restart)."""
        self.cpu.tracker.reset_window()

    def cpu_utilization(self) -> float:
        """Mean CPU utilization over the current window, in [0, 1]."""
        return min(1.0, self.cpu.tracker.utilization())
