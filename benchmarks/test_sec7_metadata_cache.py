"""Section 7: the strongly-consistent meta-data cache simulation."""

from conftest import banner, once, scale, table

from repro.traces import (
    CAMPUS_PROFILE,
    EECS_PROFILE,
    TraceGenerator,
    sweep_cache_sizes,
)

SIZES = (16, 64, 256, 1024, 4096)


def test_sec7_metadata_cache(benchmark):
    limit = scale(800_000, 150_000)

    def run():
        out = {}
        for profile in (EECS_PROFILE, CAMPUS_PROFILE):
            events = list(TraceGenerator(profile).events(limit=limit))
            out[profile.name] = sweep_cache_sizes(events, sizes=SIZES)
        return out

    results = once(benchmark, run)
    for name in ("eecs", "campus"):
        banner("Section 7 [%s]: consistent meta-data cache vs 3s-expiry "
               "baseline" % name)
        rows = []
        for size in SIZES:
            r = results[name][size]
            rows.append([
                size,
                r.baseline_messages,
                r.consistent_messages,
                "%.1f%%" % (r.reduction * 100),
                "%.1e" % r.callback_ratio,
            ])
        table(["cache size", "baseline msgs", "consistent msgs",
               "reduction", "callback ratio"], rows)

    # The paper's Section-7 numbers: a directory cache of ~2^10 entries
    # eliminates more than 70% of meta-data messages (EECS), and the
    # callback traffic is a small fraction of what it replaces.
    assert results["eecs"][1024].reduction > 0.70
    assert results["campus"][1024].reduction > 0.40
    for name in ("eecs", "campus"):
        assert results[name][1024].callback_ratio < 0.10
        # Reduction grows with cache size.
        assert results[name][4096].reduction >= results[name][16].reduction
