"""Shared infrastructure for the reproduction benchmarks.

Each ``benchmarks/test_*`` module regenerates one table or figure from the
paper and prints it next to the paper's own numbers.  Simulated *message
counts* are expected to match closely; *times* are expected to match in
shape (who wins, by what factor) — see EXPERIMENTS.md.

Scale: by default the data-intensive benchmarks run scaled down (they note
their scale factor in the output).  Set ``REPRO_SCALE=paper`` to run at the
paper's full sizes (slower).
"""

from __future__ import annotations

import os

import pytest

PAPER_SCALE = os.environ.get("REPRO_SCALE", "").lower() == "paper"

_capture_manager = None


def pytest_configure(config):
    # The paper-vs-measured tables must reach the terminal (and any tee)
    # even under pytest's default output capture.
    global _capture_manager
    _capture_manager = config.pluginmanager.getplugin("capturemanager")


def _emit(text: str) -> None:
    if _capture_manager is not None:
        with _capture_manager.global_and_fixture_disabled():
            print(text, flush=True)
    else:
        print(text, flush=True)


def scale(full_value: int, scaled_value: int) -> int:
    """Pick the paper-scale or the default scaled-down parameter."""
    return full_value if PAPER_SCALE else scaled_value


def banner(title: str) -> None:
    _emit("")
    _emit("=" * 72)
    _emit(title)
    _emit("=" * 72)


def table(headers, rows) -> None:
    widths = [max(len(str(headers[i])),
                  max((len(str(r[i])) for r in rows), default=0))
              for i in range(len(headers))]
    line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    _emit(line)
    _emit("-" * len(line))
    for row in rows:
        _emit("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))


def once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


@pytest.fixture
def show():
    """(banner, table) printing helpers as a fixture tuple."""
    return banner, table
