"""Figure 4: message overhead vs directory depth (mkdir/chdir/readdir)."""

from conftest import banner, once, table

from repro.workloads import run_depth_sweep

DEPTHS = (0, 2, 4, 8, 12, 16)
OPS = ("mkdir", "chdir", "readdir")


def test_fig4_depth(benchmark):
    def run():
        out = {}
        for op in OPS:
            out[op, "nfsv3", "cold"] = run_depth_sweep(op, "nfsv3", DEPTHS)
            out[op, "nfsv4", "cold"] = run_depth_sweep(op, "nfsv4", DEPTHS)
            out[op, "iscsi", "cold"] = run_depth_sweep(op, "iscsi", DEPTHS)
            out[op, "nfsv3", "warm"] = run_depth_sweep(op, "nfsv3", DEPTHS, warm=True)
            out[op, "iscsi", "warm"] = run_depth_sweep(op, "iscsi", DEPTHS, warm=True)
        return out

    results = once(benchmark, run)
    for op in OPS:
        banner("Figure 4 [%s]: messages vs directory depth" % op)
        rows = []
        for key in (("nfsv3", "cold"), ("nfsv4", "cold"), ("iscsi", "cold"),
                    ("nfsv3", "warm"), ("iscsi", "warm")):
            sweep = results[(op,) + key]
            rows.append(["%s (%s)" % key] + [sweep[d] for d in DEPTHS])
        table(["series"] + ["d=%d" % d for d in DEPTHS], rows)

    for op in OPS:
        v3 = results[op, "nfsv3", "cold"]
        v4 = results[op, "nfsv4", "cold"]
        iscsi = results[op, "iscsi", "cold"]
        # ~1 extra message/level for v2/v3; ~2 for v4 and iSCSI ("in tandem").
        v3_slope = (v3[16] - v3[0]) / 16.0
        v4_slope = (v4[16] - v4[0]) / 16.0
        iscsi_slope = (iscsi[16] - iscsi[0]) / 16.0
        assert 0.9 <= v3_slope <= 1.1
        assert 1.8 <= v4_slope <= 2.2
        assert 1.8 <= iscsi_slope <= 2.3
        # Warm curves are flat, independent of depth.
        for kind in ("nfsv3", "iscsi"):
            warm = results[op, kind, "warm"]
            assert abs(warm[16] - warm[0]) <= 1, (op, kind)
