"""Table 6: TPC-C-like OLTP — normalized throughput and messages."""

from conftest import banner, once, scale, table

from repro.workloads import TpccWorkload


def test_table6_tpcc(benchmark):
    transactions = scale(5000, 1000)

    def run():
        return {
            kind: TpccWorkload(kind, transactions=transactions).run()
            for kind in ("nfsv3", "iscsi")
        }

    results = once(benchmark, run)
    nfs, iscsi = results["nfsv3"], results["iscsi"]
    normalized = iscsi.throughput / nfs.throughput
    banner("Table 6: TPC-C (%d txns) — normalized tpmC (paper: 1.08)"
           % transactions)
    table(
        ["stack", "tpmC(norm)", "messages", "server CPU", "client CPU"],
        [
            ["nfsv3", "1.00", nfs.messages,
             "%.0f%% (13%%)" % (nfs.server_cpu * 100),
             "%.0f%% (100%%)" % (nfs.client_cpu * 100)],
            ["iscsi", "%.2f" % normalized, iscsi.messages,
             "%.0f%% (7%%)" % (iscsi.server_cpu * 100),
             "%.0f%% (100%%)" % (iscsi.client_cpu * 100)],
        ],
    )

    # "There is a marginal difference between NFS v3 and iSCSI."
    assert 0.85 < normalized < 1.30
    # Message counts are comparable (517K vs 531K in the paper).
    assert 0.7 < nfs.messages / iscsi.messages < 1.4
    # Server CPU: NFS roughly twice iSCSI.
    assert nfs.server_cpu > 1.5 * iscsi.server_cpu
