"""Table 10: client CPU utilization across the macro-benchmarks."""

from conftest import banner, once, scale, table

from repro.workloads import PostMark, TpccWorkload, TpchWorkload

PAPER = {"postmark": (2, 25), "tpcc": (100, 100), "tpch": (100, 100)}


def test_table10_client_cpu(benchmark):
    def run():
        out = {}
        for kind in ("nfsv3", "iscsi"):
            out["postmark", kind] = PostMark(
                kind, file_count=1000, transactions=scale(100_000, 6_000)
            ).run()
            out["tpcc", kind] = TpccWorkload(
                kind, transactions=scale(5000, 800)
            ).run()
            out["tpch", kind] = TpchWorkload(
                kind, queries=scale(8, 3), database_mb=scale(1024, 96)
            ).run()
        return out

    results = once(benchmark, run)
    banner("Table 10: client CPU utilization — measured (paper)")
    rows = []
    for bench in ("postmark", "tpcc", "tpch"):
        nfs = results[bench, "nfsv3"].client_cpu * 100
        iscsi = results[bench, "iscsi"].client_cpu * 100
        p_nfs, p_iscsi = PAPER[bench]
        rows.append([bench, "%.0f%% (%d%%)" % (nfs, p_nfs),
                     "%.0f%% (%d%%)" % (iscsi, p_iscsi)])
    table(["benchmark", "NFS v3", "iSCSI"], rows)

    # PostMark: the inversion — iSCSI does the filesystem work at the
    # client, NFS's client is nearly idle.
    assert results["postmark", "iscsi"].client_cpu > \
        5 * results["postmark", "nfsv3"].client_cpu
    assert results["postmark", "nfsv3"].client_cpu < 0.15
    # TPC-C/H: the database dominates and both clients run hot.
    for bench in ("tpcc", "tpch"):
        for kind in ("nfsv3", "iscsi"):
            assert results[bench, kind].client_cpu > 0.4, (bench, kind)
