"""What-if bench: NFS v4 compound RPCs (the paper's Section 6.3).

"NFS v4 and DAFS allow the use of compound RPCs to aggregate related
meta-data requests and reduce network traffic. ... it is not possible to
speculate on the actual performance benefits, since it depends on the
degree of compounding."

This bench supplies the missing number for our testbed: the deep-path
micro-benchmark with and without compound walks.
"""

from dataclasses import replace

from conftest import banner, once, table

from repro.core.params import NfsParams, TestbedParams
from repro.workloads import SyscallMicrobench

DEPTHS = (2, 4, 8, 16)


def test_whatif_v4_compounds(benchmark):
    def run():
        out = {}
        for compound in (False, True):
            params = TestbedParams(
                nfs=replace(NfsParams.for_version(4), compound_rpcs=compound)
            )
            for depth in DEPTHS:
                bench = SyscallMicrobench("nfsv4", depth, params)
                out[compound, depth] = bench.measure_cold("stat")
        return out

    results = once(benchmark, run)
    banner("Section 6.3 what-if: v4 cold stat messages vs depth, with and "
           "without compound walks")
    rows = [
        ["separate RPCs"] + [results[False, d] for d in DEPTHS],
        ["compound walk"] + [results[True, d] for d in DEPTHS],
    ]
    table(["v4 client"] + ["depth %d" % d for d in DEPTHS], rows)

    for depth in DEPTHS:
        assert results[True, depth] < results[False, depth]
    # Compounding flattens the depth tax: the whole walk is one exchange,
    # so the compound curve grows far slower than ~2 messages per level.
    separate_slope = (results[False, 16] - results[False, 2]) / 14.0
    compound_slope = (results[True, 16] - results[True, 2]) / 14.0
    assert separate_slope >= 1.8
    assert compound_slope <= 0.3
