"""Table 4: 128 MB sequential/random reads and writes (NFS v3 vs iSCSI)."""

from conftest import banner, once, scale, table

from repro.workloads import SeqRandWorkload

# (completion s, messages, MB) from the paper at 128 MB
PAPER = {
    ("nfsv3", "seq-read"): (35, 33_362, 153), ("iscsi", "seq-read"): (35, 32_790, 148),
    ("nfsv3", "rand-read"): (64, 32_860, 153), ("iscsi", "rand-read"): (55, 32_827, 148),
    ("nfsv3", "seq-write"): (17, 32_990, 151), ("iscsi", "seq-write"): (2, 1_135, 143),
    ("nfsv3", "rand-write"): (21, 33_015, 151), ("iscsi", "rand-write"): (5, 1_150, 143),
}


def test_table4_seqrand(benchmark):
    file_mb = scale(128, 16)
    factor = 128 // file_mb

    def run():
        out = {}
        for kind in ("nfsv3", "iscsi"):
            workload = SeqRandWorkload(kind, file_mb=file_mb)
            out[kind, "seq-read"] = workload.run_read(True)
            out[kind, "rand-read"] = workload.run_read(False)
            out[kind, "seq-write"] = workload.run_write(True)
            out[kind, "rand-write"] = workload.run_write(False)
        return out

    results = once(benchmark, run)
    banner("Table 4: %d MB streaming I/O — measured x%d (paper @128MB)"
           % (file_mb, factor))
    rows = []
    for mode in ("seq-read", "rand-read", "seq-write", "rand-write"):
        for kind in ("nfsv3", "iscsi"):
            r = results[kind, mode]
            p = PAPER[kind, mode]
            rows.append([
                mode, kind,
                "%.1fs (%ds)" % (r.completion_time * factor, p[0]),
                "%d (%d)" % (r.messages * factor, p[1]),
                "%.0fMB (%dMB)" % (r.bytes * factor / 1e6, p[2]),
            ])
    table(["workload", "stack", "time", "messages", "bytes"], rows)

    n = {m: results["nfsv3", m] for m in ("seq-read", "rand-read",
                                          "seq-write", "rand-write")}
    i = {m: results["iscsi", m] for m in ("seq-read", "rand-read",
                                          "seq-write", "rand-write")}
    # Reads: comparable times and message counts.
    assert 0.5 < n["seq-read"].completion_time / i["seq-read"].completion_time < 2.0
    assert abs(n["seq-read"].messages - i["seq-read"].messages) \
        < 0.05 * n["seq-read"].messages
    # Random reads: NFS somewhat worse (paper: ~15%).
    assert n["rand-read"].completion_time >= i["rand-read"].completion_time
    # Writes: iSCSI dramatically faster and ~30x fewer messages.
    assert i["seq-write"].completion_time < n["seq-write"].completion_time / 4
    assert i["seq-write"].messages < n["seq-write"].messages / 10
    # Byte totals comparable across stacks (the same data moves).
    assert 0.7 < n["seq-write"].bytes / i["seq-write"].bytes < 1.5
