"""Figure 6: completion time vs network RTT (the NISTNet sweep)."""

from conftest import banner, once, scale, table

from repro.workloads import SeqRandWorkload

RTTS = (0.010, 0.030, 0.050, 0.070, 0.090)


def test_fig6_latency(benchmark):
    file_mb = scale(128, 4)
    factor = 128 // file_mb

    def run():
        out = {}
        for kind in ("nfsv3", "iscsi"):
            for rtt in RTTS:
                workload = SeqRandWorkload(kind, file_mb=file_mb, rtt=rtt)
                out["read", kind, rtt] = workload.run_read(True)
                out["write", kind, rtt] = workload.run_write(True)
        return out

    results = once(benchmark, run)
    for mode in ("read", "write"):
        banner("Figure 6 [%ss]: completion (s, x%d) vs RTT" % (mode, factor))
        rows = []
        for kind in ("nfsv3", "iscsi"):
            rows.append([kind] + [
                "%.0f" % (results[mode, kind, rtt].completion_time * factor)
                for rtt in RTTS
            ])
        table(["stack"] + ["%dms" % int(rtt * 1000) for rtt in RTTS], rows)

    # Reads: both degrade with RTT; NFS degrades faster (shallower
    # pipelining + retransmission exposure).
    for kind in ("nfsv3", "iscsi"):
        assert results["read", kind, 0.090].completion_time > \
            results["read", kind, 0.010].completion_time * 3
    assert results["read", "nfsv3", 0.090].completion_time > \
        results["read", "iscsi", 0.090].completion_time * 1.3

    # Writes: iSCSI flat (asynchronous); NFS grows with RTT
    # (pseudo-synchronous window).
    iscsi_writes = [results["write", "iscsi", rtt].completion_time for rtt in RTTS]
    assert max(iscsi_writes) < 2 * min(iscsi_writes) + 1.0
    assert results["write", "nfsv3", 0.090].completion_time > \
        results["write", "nfsv3", 0.010].completion_time * 3
    assert results["write", "nfsv3", 0.090].completion_time > \
        results["write", "iscsi", 0.090].completion_time * 10
