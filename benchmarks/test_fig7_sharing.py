"""Figure 7: directory sharing characteristics of the multi-client traces."""

from conftest import banner, once, scale, table

from repro.traces import (
    CAMPUS_PROFILE,
    EECS_PROFILE,
    TraceGenerator,
    analyze_sharing,
)

INTERVALS = (60, 200, 400, 600, 800, 1000, 1200)


def test_fig7_sharing(benchmark):
    limit = scale(800_000, 150_000)

    def run():
        out = {}
        for profile in (EECS_PROFILE, CAMPUS_PROFILE):
            events = list(TraceGenerator(profile).events(limit=limit))
            out[profile.name] = analyze_sharing(events, intervals=INTERVALS)
        return out

    results = once(benchmark, run)
    for name in ("eecs", "campus"):
        banner("Figure 7 [%s]: normalized directories per interval" % name)
        rows = []
        for point in results[name]:
            rows.append([
                "%.0f" % point.interval,
                "%.3f" % point.read_by_one,
                "%.3f" % point.read_by_multiple,
                "%.3f" % point.written_by_one,
                "%.3f" % point.written_by_multiple,
                "%.3f" % point.read_write_shared,
            ])
        table(["T", "read-by-1", "read-by-N", "write-by-1", "write-by-N",
               "rw-shared"], rows)

    for name in ("eecs", "campus"):
        for point in results[name]:
            # Single-client access dominates at every time scale.
            assert point.read_by_one > point.read_by_multiple
            assert point.written_by_one > point.written_by_multiple
        # The paper: only ~4% (EECS) / ~3.5% (Campus) of directories are
        # read-write shared at T = 1000 s.
        at_1000 = next(p for p in results[name] if p.interval == 1000)
        assert at_1000.read_write_shared < 0.06, name
    # EECS reads are shared more than its writes by a wide margin.
    eecs_1000 = next(p for p in results["eecs"] if p.interval == 1000)
    assert eecs_1000.read_by_multiple > 3 * eecs_1000.written_by_multiple
