"""Ablation benches: twist each design knob DESIGN.md calls out and show
that the paper's observed effect is attributable to that mechanism.
"""

from dataclasses import replace

from conftest import banner, once, table

from repro.core.params import Ext3Params, NfsParams, TestbedParams
from repro.workloads import (
    PostMark,
    SeqRandWorkload,
    SyscallMicrobench,
    run_batching_sweep,
)


def test_ablation_commit_interval(benchmark):
    """The 5 s journal commit drives iSCSI's update aggregation: shrink it
    and the amortized message cost of batched updates rises."""
    def run():
        out = {}
        for interval in (0.001, 0.5, 5.0):
            params = TestbedParams(
                ext3=Ext3Params(journal_commit_interval=interval)
            )
            sweep = run_batching_sweep("mkdir", batch_sizes=(64,),
                                       params=params)
            out[interval] = sweep[64]
        return out

    results = once(benchmark, run)
    banner("Ablation: journal commit interval vs amortized mkdir msgs (n=64)")
    table(["interval (s)", "msgs/op"],
          [[i, "%.2f" % results[i]] for i in sorted(results)])
    assert results[0.001] > results[5.0]


def test_ablation_write_limit(benchmark):
    """The pending-async-write pool is what throttles NFS streaming writes."""
    def run():
        out = {}
        for limit in (2, 16, 64):
            params = TestbedParams(nfs=NfsParams(max_pending_writes=limit))
            workload = SeqRandWorkload("nfsv3", file_mb=8, params=params)
            out[limit] = workload.run_write(True).completion_time
        return out

    results = once(benchmark, run)
    banner("Ablation: NFS pending-write limit vs 8MB sequential write time")
    table(["limit", "time (s)"],
          [[l, "%.2f" % results[l]] for l in sorted(results)])
    assert results[2] > results[64]


def test_ablation_attr_cache(benchmark):
    """The attribute validity window sets the consistency-check traffic:
    stats spaced wider than the window each cost a revalidation."""
    from repro.core.comparison import make_stack

    def run():
        out = {}
        for validity in (0.5, 3.0, 60.0):
            params = TestbedParams(nfs=NfsParams(attr_cache_validity=validity))
            stack = make_stack("nfsv3", params)
            c = stack.client

            def work(c=c, stack=stack):
                fd = yield from c.creat("/f")
                yield from c.write(fd, 4096)
                yield from c.close(fd)
                fd = yield from c.open("/f")
                yield from c.read(fd, 4096)
                for i in range(30):
                    # alternate short and long idle gaps
                    yield stack.sim.timeout(1.0 if i % 2 else 10.0)
                    yield from c.pread(fd, 4096, 0)

            snap = stack.snapshot()
            stack.run(work())
            stack.quiesce()
            out[validity] = stack.delta(snap).messages
        return out

    results = once(benchmark, run)
    banner("Ablation: attribute-cache validity vs data consistency checks "
           "(30 re-reads, mixed 1 s / 10 s gaps)")
    table(["validity (s)", "messages"],
          [[v, results[v]] for v in sorted(results)])
    assert results[0.5] > results[3.0] > results[60.0]


def test_ablation_transfer_size(benchmark):
    """rsize bounds per-RPC data: large reads need size/rsize messages."""
    def run():
        out = {}
        for rsize in (4096, 8192, 32768):
            params = TestbedParams(nfs=NfsParams(rsize=rsize))
            workload = SeqRandWorkload("nfsv3", file_mb=4, chunk=65536,
                                       params=params)
            out[rsize] = workload.run_read(True).messages
        return out

    results = once(benchmark, run)
    banner("Ablation: rsize vs messages for 4MB of 64KB reads (NFS v3)")
    table(["rsize", "messages"],
          [[r, results[r]] for r in sorted(results)])
    assert results[4096] > results[8192] > results[32768]


def test_ablation_v4_access(benchmark):
    """The v4 client's per-component ACCESS calls are its cold-path tax."""
    def run():
        out = {}
        for check in (True, False):
            params = TestbedParams(
                nfs=replace(NfsParams.for_version(4),
                            access_check_per_component=check)
            )
            bench = SyscallMicrobench("nfsv4", depth=8, params=params)
            out[check] = bench.measure_cold("chdir")
        return out

    results = once(benchmark, run)
    banner("Ablation: v4 per-component ACCESS vs cold chdir at depth 8")
    table(["access checks", "messages"],
          [["on", results[True]], ["off", results[False]]])
    assert results[True] >= results[False] + 8


def test_ablation_inode_locality(benchmark):
    """32 inodes per block is the meta-data locality behind warm iSCSI;
    with one inode per block every neighbour costs its own read."""
    def run():
        out = {}
        for per_block in (1, 32):
            params = TestbedParams(
                ext3=Ext3Params(inodes_per_block=per_block)
            )
            pm = PostMark("iscsi", file_count=400, transactions=1500,
                          params=params)
            out[per_block] = pm.run().messages
        return out

    results = once(benchmark, run)
    banner("Ablation: inodes per block vs iSCSI PostMark messages")
    table(["inodes/block", "messages"],
          [[k, results[k]] for k in sorted(results)])
    assert results[1] > results[32]
