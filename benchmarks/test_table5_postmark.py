"""Table 5: PostMark completion times and message counts."""

from conftest import banner, once, scale, table

from repro.workloads import PostMark

# Paper @ 100 K transactions: (NFS s, iSCSI s, NFS msgs, iSCSI msgs)
PAPER = {
    1000: (146, 12, 371_963, 101),
    5000: (201, 35, 451_415, 276),
    25000: (516, 208, 639_128, 66_965),
}


def test_table5_postmark(benchmark):
    transactions = scale(100_000, 8_000)
    factor = 100_000 // transactions
    pools = (1000, 5000) if transactions < 100_000 else (1000, 5000, 25000)

    def run():
        out = {}
        for files in pools:
            for kind in ("nfsv3", "iscsi"):
                out[files, kind] = PostMark(
                    kind, file_count=files, transactions=transactions
                ).run()
        return out

    results = once(benchmark, run)
    banner("Table 5: PostMark, %d txns (x%d vs paper's 100K)"
           % (transactions, factor))
    rows = []
    for files in pools:
        nfs = results[files, "nfsv3"]
        iscsi = results[files, "iscsi"]
        paper = PAPER[files]
        rows.append([
            files,
            "%.0fs (%d)" % (nfs.completion_time * factor, paper[0]),
            "%.0fs (%d)" % (iscsi.completion_time * factor, paper[1]),
            "%d (%d)" % (nfs.messages * factor, paper[2]),
            "%d (%d)" % (iscsi.messages * factor, paper[3]),
        ])
    table(["files", "NFS time", "iSCSI time", "NFS msgs", "iSCSI msgs"], rows)

    for files in pools:
        nfs = results[files, "nfsv3"]
        iscsi = results[files, "iscsi"]
        # The headline: iSCSI wins big on this meta-data-intensive load.
        assert iscsi.completion_time < nfs.completion_time / 4
        assert iscsi.messages < nfs.messages / 10
    # The gap narrows as the pool grows (caching effectiveness dwindles).
    small_ratio = (results[1000, "nfsv3"].messages
                   / max(1, results[1000, "iscsi"].messages))
    big_ratio = (results[pools[-1], "nfsv3"].messages
                 / max(1, results[pools[-1], "iscsi"].messages))
    assert big_ratio < small_ratio
