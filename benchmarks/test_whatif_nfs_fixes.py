"""What-if bench: the paper's Section 6.1 speculation, tested.

"We speculate that an increase in the pending writes limit and
optimizations such as spatial write aggregation in NFS will eliminate
this performance gap [on write-intensive workloads]."

This bench applies exactly those two changes to the stock v3 client —
nothing else — and reruns the Table 4 sequential write.
"""

from conftest import banner, once, scale, table

from repro.core.params import NfsParams, TestbedParams
from repro.workloads import SeqRandWorkload


def test_whatif_nfs_write_fixes(benchmark):
    file_mb = scale(128, 16)

    def run():
        out = {}
        out["nfsv3 (stock)"] = SeqRandWorkload(
            "nfsv3", file_mb=file_mb
        ).run_write(True)
        fixed = TestbedParams(nfs=NfsParams(
            max_pending_writes=64,      # raised pending-write limit
            pages_per_flush_rpc=32,     # spatial write aggregation (128 KB)
        ))
        out["nfsv3 (6.1 fixes)"] = SeqRandWorkload(
            "nfsv3", file_mb=file_mb, params=fixed
        ).run_write(True)
        out["iscsi"] = SeqRandWorkload(
            "iscsi", file_mb=file_mb
        ).run_write(True)
        return out

    results = once(benchmark, run)
    banner("Section 6.1 what-if: %d MB sequential write" % file_mb)
    rows = [[label, "%.2fs" % r.completion_time, r.messages]
            for label, r in results.items()]
    table(["configuration", "time", "messages"], rows)

    stock = results["nfsv3 (stock)"]
    fixed = results["nfsv3 (6.1 fixes)"]
    iscsi = results["iscsi"]
    # The two fixes recover most of the gap, as the paper speculated:
    assert fixed.completion_time < stock.completion_time / 3
    assert fixed.messages < stock.messages / 8
    # ...but synchronous close-to-open semantics keep a residual gap.
    assert fixed.completion_time >= iscsi.completion_time
