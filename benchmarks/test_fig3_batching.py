"""Figure 3: iSCSI meta-data update aggregation (amortized msgs per op)."""

from conftest import banner, once, table

from repro.workloads import run_batching_sweep

OPS = ["creat", "mkdir", "chmod", "link", "stat", "access", "write"]
BATCHES = (1, 4, 16, 64, 256, 1024)


def test_fig3_batching(benchmark):
    def run():
        return {op: run_batching_sweep(op, batch_sizes=BATCHES) for op in OPS}

    results = once(benchmark, run)
    banner("Figure 3: amortized iSCSI messages/op vs batch size")
    rows = [[op] + ["%.2f" % results[op][n] for n in BATCHES] for op in OPS]
    table(["op"] + ["n=%d" % n for n in BATCHES], rows)

    for op in OPS:
        sweep = results[op]
        # Amortized cost falls monotonically-ish and collapses at the top
        # end — the paper's curves drop from ~6-7 toward well under 1.
        assert sweep[1] >= sweep[16] >= sweep[1024]
        assert sweep[1024] < 1.0, op
    # Update-heavy ops start high (cold path resolution + allocation).
    assert results["mkdir"][1] >= 5
    # Read-only ops saturate at zero extra messages once cached.
    assert results["stat"][1024] < 0.1
    assert results["access"][1024] < 0.1
