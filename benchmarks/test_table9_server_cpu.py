"""Table 9: server CPU utilization across the macro-benchmarks."""

from conftest import banner, once, scale, table

from repro.workloads import PostMark, TpccWorkload, TpchWorkload

PAPER = {"postmark": (77, 13), "tpcc": (13, 7), "tpch": (20, 11)}


def test_table9_server_cpu(benchmark):
    def run():
        out = {}
        for kind in ("nfsv3", "iscsi"):
            out["postmark", kind] = PostMark(
                kind, file_count=1000, transactions=scale(100_000, 6_000)
            ).run()
            out["tpcc", kind] = TpccWorkload(
                kind, transactions=scale(5000, 800)
            ).run()
            out["tpch", kind] = TpchWorkload(
                kind, queries=scale(8, 3), database_mb=scale(1024, 96)
            ).run()
        return out

    results = once(benchmark, run)
    banner("Table 9: server CPU utilization — measured (paper)")
    rows = []
    for bench in ("postmark", "tpcc", "tpch"):
        nfs = results[bench, "nfsv3"].server_cpu * 100
        iscsi = results[bench, "iscsi"].server_cpu * 100
        p_nfs, p_iscsi = PAPER[bench]
        rows.append([bench, "%.0f%% (%d%%)" % (nfs, p_nfs),
                     "%.0f%% (%d%%)" % (iscsi, p_iscsi)])
    table(["benchmark", "NFS v3", "iSCSI"], rows)

    for bench in ("postmark", "tpcc", "tpch"):
        nfs = results[bench, "nfsv3"].server_cpu
        iscsi = results[bench, "iscsi"].server_cpu
        # The paper's claim: NFS server utilization is roughly double (and
        # for PostMark, far more than double) iSCSI's.
        assert nfs > 1.5 * iscsi, bench
    # PostMark is the extreme case (meta-data caching defeated).
    assert results["postmark", "nfsv3"].server_cpu > \
        3 * results["postmark", "iscsi"].server_cpu
