"""Table 8: tar / ls -lR / make / rm -rf over a kernel-like source tree."""

from conftest import banner, once, scale, table

from repro.workloads import KernelTreeOps, TreeSpec

# Paper, full kernel tree: (NFS s, iSCSI s)
PAPER = {"tar": (60, 5), "ls": (12, 6), "make": (222, 193), "rm": (40, 22)}


def test_table8_kernel_tree(benchmark):
    top_dirs = scale(120, 12)   # 12 -> roughly a tenth of a kernel tree
    spec = TreeSpec(top_dirs=top_dirs)
    factor = 120 // top_dirs

    def run():
        return {
            kind: KernelTreeOps(kind, spec).run_all()
            for kind in ("nfsv3", "iscsi")
        }

    results = once(benchmark, run)
    nfs, iscsi = results["nfsv3"], results["iscsi"]
    banner("Table 8: kernel-tree ops, %d files (x%d) — measured (paper)"
           % (spec.total_files, factor))
    rows = [
        ["tar -xzf", "%.0fs (%d)" % (nfs.tar_seconds * factor, PAPER["tar"][0]),
         "%.1fs (%d)" % (iscsi.tar_seconds * factor, PAPER["tar"][1])],
        ["ls -lR", "%.0fs (%d)" % (nfs.ls_seconds * factor, PAPER["ls"][0]),
         "%.1fs (%d)" % (iscsi.ls_seconds * factor, PAPER["ls"][1])],
        ["make", "%.0fs (%d)" % (nfs.make_seconds * factor, PAPER["make"][0]),
         "%.0fs (%d)" % (iscsi.make_seconds * factor, PAPER["make"][1])],
        ["rm -rf", "%.0fs (%d)" % (nfs.rm_seconds * factor, PAPER["rm"][0]),
         "%.1fs (%d)" % (iscsi.rm_seconds * factor, PAPER["rm"][1])],
    ]
    table(["benchmark", "NFS v3", "iSCSI"], rows)

    # Meta-data-heavy phases: iSCSI wins clearly.
    assert iscsi.tar_seconds < nfs.tar_seconds / 3
    assert iscsi.ls_seconds < nfs.ls_seconds
    assert iscsi.rm_seconds < nfs.rm_seconds
    # The compile is CPU-bound: near-parity (paper: 222 vs 193, ~13%).
    assert iscsi.make_seconds < nfs.make_seconds
    assert iscsi.make_seconds > 0.5 * nfs.make_seconds
