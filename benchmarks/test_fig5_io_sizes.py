"""Figure 5: message overhead vs read/write request size (128 B - 64 KB)."""

from conftest import banner, once, table

from repro.workloads import run_io_size_sweep

SIZES = tuple(2 ** e for e in range(7, 17))
KINDS = ("nfsv2", "nfsv3", "nfsv4", "iscsi")


def test_fig5_io_sizes(benchmark):
    def run():
        out = {}
        for mode in ("cold-read", "warm-read", "cold-write"):
            for kind in KINDS:
                out[mode, kind] = run_io_size_sweep(kind, mode, sizes=SIZES)
        return out

    results = once(benchmark, run)
    for mode in ("cold-read", "warm-read", "cold-write"):
        banner("Figure 5 [%s]: messages vs I/O size" % mode)
        rows = [[kind] + [results[mode, kind][s] for s in SIZES]
                for kind in KINDS]
        table(["stack"] + ["%dB" % s if s < 1024 else "%dK" % (s // 1024)
                           for s in SIZES], rows)

    cold_read = {k: results["cold-read", k] for k in KINDS}
    # v2/v3 cold reads climb past the 8 KB transfer limit; v4 uses larger
    # transfers; iSCSI is one command regardless of size.
    assert cold_read["nfsv2"][65536] >= cold_read["nfsv2"][8192] + 6
    assert cold_read["nfsv3"][65536] >= cold_read["nfsv3"][8192] + 6
    assert cold_read["nfsv4"][65536] < cold_read["nfsv3"][65536]
    assert cold_read["iscsi"][65536] - cold_read["iscsi"][131072 // 1024] <= 3

    warm_read = {k: results["warm-read", k] for k in KINDS}
    for kind in KINDS:
        # warm reads are a near-constant trickle of consistency traffic
        assert max(warm_read[kind].values()) <= 3
    assert max(warm_read["nfsv4"].values()) == 0      # delegation
    assert set(warm_read["iscsi"].values()) == {2}    # atime journal commit

    cold_write = {k: results["cold-write", k] for k in KINDS}
    # v2 writes are synchronous (rising); v3/v4 async writes escape the
    # capture window (flat) — the paper's explanation verbatim.
    assert cold_write["nfsv2"][65536] > cold_write["nfsv2"][4096]
    assert cold_write["nfsv3"][65536] - cold_write["nfsv3"][4096] <= 1
    assert cold_write["nfsv4"][65536] - cold_write["nfsv4"][4096] <= 1
