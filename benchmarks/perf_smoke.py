"""CI wall-clock perf smoke: time the kernel storms + the quick suite.

Produces a small JSON document of best-of-N wall-clock seconds::

    PYTHONPATH=src python benchmarks/perf_smoke.py --out BENCH_perf.json

and gates against a committed baseline::

    PYTHONPATH=src python benchmarks/perf_smoke.py \
        --compare BENCH_perf.json --tolerance 2.0

The tolerance is deliberately loose (fail only when a case is more than
``tolerance`` times slower than baseline): wall-clock on shared CI
runners is noisy, and this gate exists to catch *gross* kernel
regressions — an accidentally reintroduced per-event closure, a
quadratic calendar — not 10% drift.  Precise, deterministic regression
checking (message counts, simulated times) lives in ``repro bench``.
The machine-dependent baseline numbers double as the measured record of
the kernel optimization's speedups.
"""
# simlint: disable-file=D101 -- benchmark harness measures host runtime on purpose

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict

from repro.sim.perf import MICROBENCHES, time_callable


def run_cases(repeat: int = 3) -> Dict[str, float]:
    """Best-of-``repeat`` wall-clock seconds for every smoke case."""
    from repro.obs import bench

    cases = {}
    for name in sorted(MICROBENCHES):
        fn, kwargs = MICROBENCHES[name]
        cases[name] = round(time_callable(fn, kwargs, repeat=repeat), 6)
    best = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        bench.run_suite("quick")
        best = min(best, time.perf_counter() - start)
    cases["quick_suite_traced"] = round(best, 6)
    return cases


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", metavar="FILE",
                        help="write results as JSON to FILE")
    parser.add_argument("--compare", metavar="BASELINE",
                        help="compare against a baseline JSON file; "
                             "exit 1 if any case regresses")
    parser.add_argument("--tolerance", type=float, default=2.0,
                        help="max allowed current/baseline wall-clock "
                             "ratio (default 2.0)")
    parser.add_argument("--repeat", type=int, default=3,
                        help="timing repetitions per case (best-of)")
    args = parser.parse_args(argv)

    cases = run_cases(repeat=args.repeat)
    for name in sorted(cases):
        print("%-22s %8.3fs" % (name, cases[name]))

    status = 0
    if args.compare:
        with open(args.compare) as handle:
            baseline = json.load(handle)["cases"]
        for name in sorted(baseline):
            if name not in cases:
                print("MISSING %s (present in baseline)" % name)
                status = 1
                continue
            ratio = cases[name] / baseline[name] if baseline[name] else 1.0
            if ratio > args.tolerance:
                print("REGRESSION %s: %.3fs -> %.3fs (%.2fx > %.2fx)"
                      % (name, baseline[name], cases[name], ratio,
                         args.tolerance))
                status = 1
        if status == 0:
            print("ok: all cases within %.2fx of baseline" % args.tolerance)

    if args.out:
        with open(args.out, "w") as handle:
            json.dump({"schema": 1, "cases": cases}, handle,
                      indent=2, sort_keys=True)
            handle.write("\n")
        print("wrote %s" % args.out)
    return status


if __name__ == "__main__":
    sys.exit(main())
