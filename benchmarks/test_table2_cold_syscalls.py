"""Table 2: cold-cache network message overheads per system call."""

from conftest import banner, once, table

from repro.workloads import SYSCALL_OPS, run_syscall_table

# Paper's Table 2 — (v2, v3, v4, iSCSI) at depths 0 and 3.
PAPER = {
    0: {"mkdir": (2, 2, 4, 7), "chdir": (1, 1, 3, 2), "readdir": (2, 2, 4, 6),
        "symlink": (3, 2, 4, 6), "readlink": (2, 2, 3, 5), "unlink": (2, 2, 4, 6),
        "rmdir": (2, 2, 4, 8), "creat": (3, 3, 10, 7), "open": (2, 2, 7, 3),
        "link": (4, 4, 7, 6), "rename": (4, 3, 7, 6), "trunc": (3, 3, 8, 6),
        "chmod": (3, 3, 5, 6), "chown": (3, 3, 5, 6), "access": (2, 2, 5, 3),
        "stat": (3, 3, 5, 3), "utime": (2, 2, 4, 6)},
    3: {"mkdir": (5, 5, 10, 13), "chdir": (4, 4, 9, 8), "readdir": (5, 5, 10, 12),
        "symlink": (6, 5, 10, 12), "readlink": (5, 5, 9, 10), "unlink": (5, 5, 10, 11),
        "rmdir": (5, 5, 10, 14), "creat": (6, 6, 16, 13), "open": (5, 5, 13, 9),
        "link": (10, 9, 16, 12), "rename": (10, 10, 16, 12), "trunc": (6, 6, 14, 12),
        "chmod": (6, 6, 11, 12), "chown": (6, 6, 11, 11), "access": (5, 5, 11, 9),
        "stat": (6, 6, 11, 9), "utime": (5, 5, 10, 12)},
}

KINDS = ("nfsv2", "nfsv3", "nfsv4", "iscsi")


def test_table2_cold_syscalls(benchmark):
    results = once(benchmark, lambda: run_syscall_table(kinds=KINDS,
                                                        depths=(0, 3),
                                                        warm=False))
    for depth in (0, 3):
        banner("Table 2 (cold cache), directory depth %d — "
               "measured (paper)" % depth)
        rows = []
        for op in SYSCALL_OPS:
            measured = [results[depth][op][k] for k in KINDS]
            paper = PAPER[depth][op]
            rows.append([op] + [
                "%d (%d)" % (m, p) for m, p in zip(measured, paper)
            ])
        table(["syscall", "NFSv2", "NFSv3", "NFSv4", "iSCSI"], rows)

    # Structural assertions from the paper's reading of this table:
    for depth in (0, 3):
        for op in ("mkdir", "rmdir", "readdir", "unlink"):
            row = results[depth][op]
            assert row["iscsi"] > row["nfsv3"]          # iSCSI pays more cold
        for op in SYSCALL_OPS:
            assert results[depth][op]["nfsv4"] >= results[depth][op]["nfsv3"]
    # NFS v2/v3 must be cell-exact against the paper, except link/rename
    # at depth 3 (±1): the paper's own v2-vs-v3 deltas there are mutually
    # inconsistent with its post-op-attribute explanation.
    loose = {(3, "link"), (3, "rename")}
    for depth in (0, 3):
        for op in SYSCALL_OPS:
            slack = 1 if (depth, op) in loose else 0
            assert abs(results[depth][op]["nfsv2"] - PAPER[depth][op][0]) <= slack, op
            assert abs(results[depth][op]["nfsv3"] - PAPER[depth][op][1]) <= slack, op
