"""Kernel hot-path micro-benchmarks (pytest-benchmark).

Wall-clock timings of the three synthetic storms in
:mod:`repro.sim.perf` — calendar churn, process spawn, contended
resources — plus the traced quick suite end-to-end.  These measure
*interpreter overhead*, not simulated outcomes (which are deterministic
and covered by the regular tests), so they report ops/second and are the
numbers to watch when touching ``repro.sim.kernel``.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/perf_kernel.py

(CI's hard wall-clock gate is ``benchmarks/perf_smoke.py``, which uses
the same storms without the pytest-benchmark dependency.)
"""

from __future__ import annotations

import pytest

pytest.importorskip("pytest_benchmark")

from repro.sim.perf import MICROBENCHES


@pytest.mark.parametrize("name", sorted(MICROBENCHES))
def test_kernel_microbench(benchmark, name):
    fn, kwargs = MICROBENCHES[name]
    operations = benchmark(fn, **kwargs)
    benchmark.extra_info["operations"] = operations


def test_quick_suite_traced(benchmark):
    """The bench quick suite: the kernel under a real traced workload."""
    from repro.obs import bench

    result = benchmark.pedantic(
        lambda: bench.run_suite("quick"), rounds=1, iterations=1)
    assert sorted(result["cases"]) == [
        "postmark/iscsi", "postmark/nfsv3",
        "randwrite/iscsi", "randwrite/nfsv3",
        "smoke/iscsi", "smoke/nfsv3",
    ]
