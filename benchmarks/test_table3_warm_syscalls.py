"""Table 3: warm-cache network message overheads per system call."""

from conftest import banner, once, table

from repro.workloads import SYSCALL_OPS, run_syscall_table

# Paper's Table 3 at depth 0 (v2, v3, v4, iSCSI).  The source scan of the
# warm table garbles rows 8-10 (creat/open/link ordering), so those rows
# are reported but only shape-asserted.
PAPER_D0 = {
    "mkdir": (2, 2, 2, 2), "chdir": (1, 1, 0, 0), "readdir": (1, 1, 0, 2),
    "symlink": (3, 2, 2, 2), "readlink": (1, 2, 0, 2), "unlink": (2, 2, 2, 2),
    "rmdir": (2, 2, 2, 2), "creat": (3, 2, 6, 2), "open": (4, 3, 2, 2),
    "link": (1, 1, 4, 0), "rename": (4, 3, 2, 2), "trunc": (2, 2, 4, 2),
    "chmod": (2, 2, 2, 2), "chown": (2, 2, 2, 2), "access": (1, 1, 1, 2),
    "stat": (2, 2, 2, 0), "utime": (1, 1, 1, 2),
}

KINDS = ("nfsv2", "nfsv3", "nfsv4", "iscsi")


def test_table3_warm_syscalls(benchmark):
    results = once(benchmark, lambda: run_syscall_table(kinds=KINDS,
                                                        depths=(0,),
                                                        warm=True))
    banner("Table 3 (warm cache), directory depth 0 — measured (paper)")
    rows = []
    for op in SYSCALL_OPS:
        measured = [results[0][op][k] for k in KINDS]
        rows.append([op] + ["%d (%d)" % (m, p)
                            for m, p in zip(measured, PAPER_D0[op])])
    table(["syscall", "NFSv2", "NFSv3", "NFSv4", "iSCSI"], rows)

    warm = results[0]
    # The paper's structural findings:
    # 1. everything is far below the cold-cache numbers;
    for op in ("mkdir", "rmdir", "unlink", "creat"):
        assert warm[op]["iscsi"] <= 3
    # 2. iSCSI warm updates cost exactly the journal commit (2 messages);
    for op in ("mkdir", "rmdir", "unlink", "creat", "chmod", "chown", "utime"):
        assert warm[op]["iscsi"] == 2, op
    # 3. iSCSI pure meta-data reads are free (true caching, no checks);
    for op in ("chdir", "stat", "access", "open"):
        assert warm[op]["iscsi"] == 0, op
    # 4. NFS v2/v3 still pay consistency checks on reads;
    for op in ("chdir", "stat", "access", "readdir"):
        assert warm[op]["nfsv3"] >= 1, op
    # 5. v2/v3 cells match the paper exactly on unambiguous rows.
    for op in ("mkdir", "chdir", "readdir", "symlink", "unlink", "rmdir",
               "rename", "trunc", "chmod", "chown", "access", "stat", "utime"):
        assert warm[op]["nfsv2"] == PAPER_D0[op][0], op
        assert warm[op]["nfsv3"] == PAPER_D0[op][1], op
