"""Table 7: TPC-H-like DSS — normalized throughput and messages."""

from conftest import banner, once, scale, table

from repro.workloads import TpchWorkload


def test_table7_tpch(benchmark):
    database_mb = scale(1024, 128)
    queries = scale(8, 4)

    def run():
        return {
            kind: TpchWorkload(kind, queries=queries,
                               database_mb=database_mb).run()
            for kind in ("nfsv3", "iscsi")
        }

    results = once(benchmark, run)
    nfs, iscsi = results["nfsv3"], results["iscsi"]
    normalized = iscsi.throughput / nfs.throughput
    banner("Table 7: TPC-H (%d MB, %d queries) — normalized QphH "
           "(paper: 1.07)" % (database_mb, queries))
    table(
        ["stack", "QphH(norm)", "messages", "server CPU", "client CPU"],
        [
            ["nfsv3", "1.00", nfs.messages,
             "%.0f%% (20%%)" % (nfs.server_cpu * 100),
             "%.0f%% (100%%)" % (nfs.client_cpu * 100)],
            ["iscsi", "%.2f" % normalized, iscsi.messages,
             "%.0f%% (11%%)" % (iscsi.server_cpu * 100),
             "%.0f%% (100%%)" % (iscsi.client_cpu * 100)],
        ],
    )

    # Comparable throughput (paper: iSCSI +7%).
    assert 0.9 < normalized < 1.35
    # NFS needs several times the messages (262K vs 63K: ~4.2x) because
    # every 32 KB extent costs rsize-limited RPCs vs one SCSI command.
    assert 3.0 < nfs.messages / iscsi.messages < 7.0
    # Server CPU roughly 2x for NFS.
    assert nfs.server_cpu > 1.5 * iscsi.server_cpu
