"""Section 7, end-to-end: enhanced NFS approaches iSCSI on meta-data loads."""

from conftest import banner, once, scale, table

from repro.workloads import PostMark, SyscallMicrobench


def test_sec7_enhanced_nfs(benchmark):
    transactions = scale(100_000, 8_000)

    def run():
        out = {
            kind: PostMark(kind, file_count=1000,
                           transactions=transactions).run()
            for kind in ("nfsv3", "nfs-enhanced", "iscsi")
        }
        out["micro"] = {
            op: {
                kind: SyscallMicrobench(kind).measure_warm(op)
                for kind in ("nfsv3", "nfs-enhanced", "iscsi")
            }
            for op in ("chdir", "stat", "access", "mkdir")
        }
        return out

    results = once(benchmark, run)
    banner("Section 7: PostMark (%d txns) with the proposed NFS enhancements"
           % transactions)
    rows = []
    for kind in ("nfsv3", "nfs-enhanced", "iscsi"):
        r = results[kind]
        rows.append([kind, "%.1fs" % r.completion_time, r.messages,
                     "%.0f%%" % (r.server_cpu * 100)])
    table(["stack", "time", "messages", "server CPU"], rows)

    banner("Warm micro-benchmark messages with enhancements")
    ops = ("chdir", "stat", "access", "mkdir")
    rows = [[kind] + [results["micro"][op][kind] for op in ops]
            for kind in ("nfsv3", "nfs-enhanced", "iscsi")]
    table(["stack"] + list(ops), rows)

    plain = results["nfsv3"]
    enhanced = results["nfs-enhanced"]
    iscsi = results["iscsi"]
    # The proposal's promise: enhanced NFS recovers most of the gap.
    assert enhanced.completion_time < plain.completion_time / 5
    assert enhanced.messages < plain.messages / 3
    # And it lands within an order of magnitude of iSCSI.
    assert enhanced.completion_time < 10 * iscsi.completion_time
    # Warm meta-data reads become free, like iSCSI's.
    for op in ("chdir", "stat", "access"):
        assert results["micro"][op]["nfs-enhanced"] == 0, op
